// Package epidemic implements a gossip-based best-effort multicast in the
// style the paper's introduction motivates for large, geographically
// distributed groups ([18], NEEM): instead of the sender unicasting to
// every participant, each infected node forwards the message to a small
// random subset of peers for a bounded number of rounds. Per-node load is
// O(fanout) instead of O(n), at the cost of probabilistic coverage —
// the reliable layer above repairs the remainder.
package epidemic

import (
	"math/rand"

	"morpheus/internal/appia"
	"morpheus/internal/group"
)

// Config configures the gossip layer.
type Config struct {
	// Self is this node's identifier.
	Self appia.NodeID
	// InitialMembers seeds the peer set until the first view.
	InitialMembers []appia.NodeID
	// Fanout is how many random peers each infection round targets
	// (default 3).
	Fanout int
	// Rounds is the infection time-to-live (default 4).
	Rounds int
	// Seed makes peer selection deterministic for experiments.
	Seed int64
}

func (c *Config) fanout() int {
	if c.Fanout <= 0 {
		return 3
	}
	return c.Fanout
}

func (c *Config) rounds() int {
	if c.Rounds <= 0 {
		return 4
	}
	return c.Rounds
}

// Layer is the epidemic best-effort multicast bottom; place it directly
// above transport.ptp in place of group.fanout.
type Layer struct {
	appia.BaseLayer
	cfg Config
}

// NewLayer returns a gossip layer.
func NewLayer(cfg Config) *Layer {
	cfg.InitialMembers = group.NormalizeMembers(append([]appia.NodeID(nil), cfg.InitialMembers...))
	return &Layer{
		BaseLayer: appia.BaseLayer{
			LayerName: "epidemic",
			LayerSpec: appia.LayerSpec{
				Accepts: []appia.EventType{
					appia.TIface[appia.Sendable](),
					appia.T[*group.ViewInstall](),
				},
				Provides: []appia.EventType{appia.TIface[appia.Sendable]()},
			},
		},
		cfg: cfg,
	}
}

// NewSession implements appia.Layer.
func (l *Layer) NewSession() appia.Session {
	seed := l.cfg.Seed
	if seed == 0 {
		seed = int64(l.cfg.Self)*7919 + 17
	}
	return &session{
		cfg:     l.cfg,
		members: l.cfg.InitialMembers,
		seed:    seed,
		seen:    make(map[gossipID]struct{}),
		nextID:  1,
	}
}

// gossipID identifies a gossiped message (originator + local counter).
type gossipID struct {
	origin appia.NodeID
	n      uint64
}

type session struct {
	cfg     Config
	members []appia.NodeID
	seed    int64
	seen    map[gossipID]struct{}
	nextID  uint64
}

var _ appia.Session = (*session)(nil)

// Handle implements appia.Session.
func (s *session) Handle(ch *appia.Channel, ev appia.Event) {
	switch e := ev.(type) {
	case *group.ViewInstall:
		if e.Dir() == appia.Down {
			s.members = e.View.Members
			return
		}
		ch.Forward(ev)
	case appia.Sendable:
		s.handleSendable(ch, e)
	default:
		ch.Forward(ev)
	}
}

func (s *session) handleSendable(ch *appia.Channel, e appia.Sendable) {
	sb := e.SendableBase()
	if sb.Dir() == appia.Down {
		if sb.Dest != appia.NoNode {
			// Addressed traffic is framed so the receiving session pops
			// symmetrically, but is not gossiped.
			s.pushHeader(sb.EnsureMsg(), gossipID{}, 0, false)
			ch.Forward(e)
			return
		}
		id := gossipID{origin: s.cfg.Self, n: s.nextID}
		s.nextID++
		s.seen[id] = struct{}{}
		s.infect(ch, e, id, s.cfg.rounds())
		return
	}
	s.receive(ch, e)
}

// receive pops the gossip header, dedupes, forwards locally and re-infects.
func (s *session) receive(ch *appia.Channel, e appia.Sendable) {
	sb := e.SendableBase()
	id, ttl, gossiped, err := s.popHeader(sb.EnsureMsg())
	if err != nil {
		return // not framed by us: stale traffic
	}
	if !gossiped {
		ch.Forward(e)
		return
	}
	if _, dup := s.seen[id]; dup {
		return // already infected: die out
	}
	s.seen[id] = struct{}{}
	if ttl > 0 {
		s.infect(ch, e, id, ttl)
	}
	ch.Forward(e)
}

// infect sends copies to the message's forwarding set with the remaining
// TTL.
func (s *session) infect(ch *appia.Channel, e appia.Sendable, id gossipID, ttl int) {
	peers := s.peersFor(id, ttl)
	sess := appia.Session(s)
	for _, p := range peers {
		cp := appia.CloneSendable(e)
		cb := cp.SendableBase()
		s.pushHeader(cb.EnsureMsg(), id, ttl-1, true)
		cb.Dest = p
		_ = ch.SendFrom(sess, cp, appia.Down)
	}
}

// peersFor derives this node's forwarding set for one gossip round as a
// pure function of (layer seed, message id, remaining TTL, membership): up
// to Fanout distinct members, excluding self and the origin (which
// trivially holds its own message). Earlier versions drew from a shared
// per-session RNG stream and excluded the node the copy was first heard
// from, which made every draw — and therefore every transmission counter —
// depend on the cross-node interleaving of *all prior* message deliveries.
// Hashing the draw per (message, round) removes that coupling: the draws
// for one message no longer shift when an unrelated message is processed
// first, so the E5 gossip counters replay (up to per-message first-arrival
// depth) at equal seeds. The TTL stays in the mix because a frozen
// per-message edge set would forfeit gossip's path redundancy.
//
// The first slot of the set is not random: it is the node's successor on a
// per-message rotation of the membership ring (the same stride at every
// node, derived from the message id alone). The rotation is a bijection,
// so every member has exactly one ring-predecessor per message and the
// infection graph has no in-degree-0 holes — the deterministic analogue of
// the coverage that i.i.d. draws only provide in expectation. The
// remaining Fanout−1 slots are the hash-random picks.
func (s *session) peersFor(id gossipID, ttl int) []appia.NodeID {
	var candidates []appia.NodeID
	self := -1
	for i, m := range s.members {
		if m == s.cfg.Self {
			self = i
		}
		if m != s.cfg.Self && m != id.origin {
			candidates = append(candidates, m)
		}
	}
	f := s.cfg.fanout()
	if len(candidates) <= f {
		return candidates
	}
	var out []appia.NodeID
	if self >= 0 {
		// Ring pick: common stride per message, first eligible successor.
		n := len(s.members)
		stride := 1 + int(mix(uint64(uint32(id.origin)), id.n)%uint64(n-1))
		for k := 0; k < n-1; k++ {
			cand := s.members[(self+stride+k)%n]
			if cand != s.cfg.Self && cand != id.origin {
				out = append(out, cand)
				break
			}
		}
	}
	rng := rand.New(rand.NewSource(int64(mix(uint64(s.seed), uint64(uint32(id.origin)), id.n, uint64(ttl)))))
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	for _, c := range candidates {
		if len(out) >= f {
			break
		}
		if len(out) > 0 && c == out[0] {
			continue // the ring pick already holds a slot
		}
		out = append(out, c)
	}
	return out
}

// mix folds the inputs through a splitmix64 finaliser, decorrelating the
// per-message RNG seeds.
func mix(vs ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		z := h
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		h = z ^ (z >> 31)
	}
	return h
}

// pushHeader frames a message: [gossiped][origin][counter][ttl].
func (s *session) pushHeader(m *appia.Message, id gossipID, ttl int, gossiped bool) {
	if gossiped {
		m.PushUvarint(uint64(ttl))
		m.PushUvarint(id.n)
		m.PushUvarint(uint64(uint32(id.origin)))
	}
	m.PushBool(gossiped)
}

// popHeader removes the frame.
func (s *session) popHeader(m *appia.Message) (gossipID, int, bool, error) {
	gossiped, err := m.PopBool()
	if err != nil {
		return gossipID{}, 0, false, err
	}
	if !gossiped {
		return gossipID{}, 0, false, nil
	}
	o, err := m.PopUvarint()
	if err != nil {
		return gossipID{}, 0, false, err
	}
	n, err := m.PopUvarint()
	if err != nil {
		return gossipID{}, 0, false, err
	}
	ttl, err := m.PopUvarint()
	if err != nil {
		return gossipID{}, 0, false, err
	}
	return gossipID{origin: appia.NodeID(uint32(o)), n: n}, int(ttl), true, nil
}
