package clock

import (
	"sync"
	"testing"
	"time"
)

// The conformance suite pins the Clock contract across both
// implementations: timer firing order, Stop/Reset semantics, ticker
// behavior, channel waits and actor forking. Wall subtests use real (small)
// durations with generous margins; the virtual clock runs the identical
// assertions on its deterministic timeline.

// impl describes one implementation under test.
type impl struct {
	name string
	mk   func(t *testing.T) (Clock, func())
}

func implementations() []impl {
	return []impl{
		{name: "wall", mk: func(t *testing.T) (Clock, func()) { return Wall(), func() {} }},
		{name: "virtual", mk: func(t *testing.T) (Clock, func()) {
			v := NewVirtual()
			return v, v.Stop
		}},
	}
}

func runConformance(t *testing.T, name string, f func(t *testing.T, c Clock)) {
	t.Helper()
	for _, im := range implementations() {
		im := im
		t.Run(name+"/"+im.name, func(t *testing.T) {
			c, stop := im.mk(t)
			defer stop()
			f(t, c)
		})
	}
}

func TestConformance(t *testing.T) {
	base := 10 * time.Millisecond

	runConformance(t, "SleepAdvancesNow", func(t *testing.T, c Clock) {
		start := c.Now()
		c.Sleep(3 * base)
		if got := c.Now().Sub(start); got < 3*base {
			t.Fatalf("slept %v, clock advanced only %v", 3*base, got)
		}
	})

	runConformance(t, "TimerOrdering", func(t *testing.T, c Clock) {
		var mu sync.Mutex
		var order []int
		// Registered out of deadline order on purpose.
		c.AfterFunc(3*base, func() { mu.Lock(); order = append(order, 2); mu.Unlock() })
		c.AfterFunc(1*base, func() { mu.Lock(); order = append(order, 0); mu.Unlock() })
		c.AfterFunc(2*base, func() { mu.Lock(); order = append(order, 1); mu.Unlock() })
		c.Sleep(5 * base)
		mu.Lock()
		defer mu.Unlock()
		if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
			t.Fatalf("timers fired out of deadline order: %v", order)
		}
	})

	runConformance(t, "StopPreventsFire", func(t *testing.T, c Clock) {
		var mu sync.Mutex
		fired := false
		tm := c.AfterFunc(2*base, func() { mu.Lock(); fired = true; mu.Unlock() })
		if !tm.Stop() {
			t.Fatal("Stop of a pending timer reported not-pending")
		}
		c.Sleep(4 * base)
		mu.Lock()
		defer mu.Unlock()
		if fired {
			t.Fatal("stopped timer fired")
		}
		if tm.Stop() {
			t.Fatal("second Stop reported pending")
		}
	})

	runConformance(t, "StopAfterFire", func(t *testing.T, c Clock) {
		tm := c.AfterFunc(base, func() {})
		c.Sleep(3 * base)
		if tm.Stop() {
			t.Fatal("Stop after fire reported pending")
		}
	})

	runConformance(t, "ResetRearms", func(t *testing.T, c Clock) {
		var mu sync.Mutex
		count := 0
		tm := c.AfterFunc(base, func() { mu.Lock(); count++; mu.Unlock() })
		c.Sleep(3 * base)
		mu.Lock()
		if count != 1 {
			mu.Unlock()
			t.Fatalf("fired %d times before Reset, want 1", count)
		}
		mu.Unlock()
		if tm.Reset(base) {
			t.Fatal("Reset of an expired timer reported pending")
		}
		c.Sleep(3 * base)
		mu.Lock()
		defer mu.Unlock()
		if count != 2 {
			t.Fatalf("fired %d times after Reset, want 2", count)
		}
	})

	runConformance(t, "NewTimerChan", func(t *testing.T, c Clock) {
		start := c.Now()
		tm := c.NewTimer(base)
		c.Sleep(3 * base)
		select {
		case at := <-tm.C():
			if at.Before(start.Add(base)) {
				t.Fatalf("timer delivered %v, before deadline %v", at, start.Add(base))
			}
		default:
			t.Fatal("timer channel empty after deadline passed")
		}
	})

	runConformance(t, "TickerTicks", func(t *testing.T, c Clock) {
		tk := c.NewTicker(base)
		defer tk.Stop()
		got := 0
		for i := 0; i < 40 && got < 3; i++ {
			c.Sleep(base)
			select {
			case <-tk.C():
				got++
			default:
			}
		}
		if got < 3 {
			t.Fatalf("ticker delivered %d ticks, want >= 3", got)
		}
	})

	runConformance(t, "TickerStopEndsTicks", func(t *testing.T, c Clock) {
		tk := c.NewTicker(base)
		c.Sleep(2 * base)
		tk.Stop()
		// Drain whatever was delivered before Stop.
		select {
		case <-tk.C():
		default:
		}
		c.Sleep(4 * base)
		select {
		case <-tk.C():
			t.Fatal("tick delivered after Stop")
		default:
		}
	})

	runConformance(t, "WaitTimeoutFires", func(t *testing.T, c Clock) {
		ch := make(chan struct{})
		c.AfterFunc(base, func() { close(ch) })
		if !c.WaitTimeout(ch, 10*base) {
			t.Fatal("WaitTimeout missed a channel that closed before the deadline")
		}
		if c.WaitTimeout(make(chan struct{}), base) {
			t.Fatal("WaitTimeout reported success on a never-ready channel")
		}
	})

	runConformance(t, "GoRunsAndJoins", func(t *testing.T, c Clock) {
		done := make(chan struct{})
		var mu sync.Mutex
		ran := false
		c.Go(func() {
			c.Sleep(base)
			mu.Lock()
			ran = true
			mu.Unlock()
			close(done)
		})
		c.Wait(done)
		mu.Lock()
		defer mu.Unlock()
		if !ran {
			t.Fatal("Go actor did not run to completion before Wait returned")
		}
	})
}

// --- virtual-only behavior ---------------------------------------------------

// TestVirtualAdvanceIsExact pins that virtual time jumps exactly to
// deadlines: no real time passes, and Now is the deadline, not "roughly
// after it".
func TestVirtualAdvanceIsExact(t *testing.T) {
	v := NewVirtual()
	defer v.Stop()
	start := v.Now()
	wallStart := time.Now()
	v.Sleep(24 * time.Hour) // a day of virtual time, instantly
	if got := v.Now().Sub(start); got != 24*time.Hour {
		t.Fatalf("virtual Sleep advanced %v, want exactly 24h", got)
	}
	if real := time.Since(wallStart); real > 5*time.Second {
		t.Fatalf("virtual day took %v of real time", real)
	}
}

// TestVirtualTieBreakIsRegistrationOrder pins the (deadline, seq) rule:
// same-deadline timers fire in the order they were registered.
func TestVirtualTieBreakIsRegistrationOrder(t *testing.T) {
	v := NewVirtual()
	defer v.Stop()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		v.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	v.Sleep(2 * time.Second)
	for i, got := range order {
		if got != i {
			t.Fatalf("tie-broken fire order %v, want registration order", order)
		}
	}
	if len(order) != 8 {
		t.Fatalf("fired %d timers, want 8", len(order))
	}
}

// TestVirtualTickerIsDriftFree pins exact tick timestamps: period p ticks
// at p, 2p, 3p with no accumulation error — the deterministic analogue of
// the "ticker drift" conformance case.
func TestVirtualTickerIsDriftFree(t *testing.T) {
	v := NewVirtual()
	defer v.Stop()
	start := v.Now()
	const p = 7 * time.Millisecond
	tk := v.NewTicker(p)
	defer tk.Stop()
	for i := 1; i <= 5; i++ {
		v.Sleep(p)
		select {
		case at := <-tk.C():
			if want := start.Add(time.Duration(i) * p); !at.Equal(want) {
				t.Fatalf("tick %d at %v, want exactly %v", i, at, want)
			}
		default:
			t.Fatalf("tick %d not delivered", i)
		}
	}
}

// TestVirtualActorSerialization pins the run-token regime: concurrent
// actors incrementing a plain (unsynchronized) counter never race, because
// at most one actor runs at a time and the token handoffs order their
// accesses. Run under -race this is the determinism foundation's proof.
func TestVirtualActorSerialization(t *testing.T) {
	v := NewVirtual()
	defer v.Stop()
	counter := 0 // deliberately unsynchronized
	const actors, rounds = 8, 50
	done := make([]chan struct{}, actors)
	for i := 0; i < actors; i++ {
		d := make(chan struct{})
		done[i] = d
		v.Go(func() {
			defer close(d)
			for r := 0; r < rounds; r++ {
				counter++
				v.Sleep(time.Millisecond)
			}
		})
	}
	for _, d := range done {
		v.Wait(d)
	}
	if counter != actors*rounds {
		t.Fatalf("counter = %d, want %d", counter, actors*rounds)
	}
}

// TestVirtualStoppedClockTimers pins the post-Stop contract: a timer
// created (or reset) on a stopped clock is never armed and must report
// not-pending, so teardown-racing bookkeeping keyed on Stop's return value
// cannot miscount.
func TestVirtualStoppedClockTimers(t *testing.T) {
	v := NewVirtual()
	v.Stop()
	tm := v.AfterFunc(time.Second, func() { t.Error("timer on a stopped clock fired") })
	if tm.Stop() {
		t.Fatal("Stop on a never-armed timer reported pending")
	}
	tm2 := v.NewTimer(time.Second)
	if tm2.Reset(time.Second) {
		t.Fatal("Reset on a stopped clock reported pending")
	}
	if tm2.Stop() {
		t.Fatal("Stop after Reset on a stopped clock reported pending")
	}
}

// TestVirtualNonActorReleasePanics pins that breaking the actor contract
// fails loudly: releasing a token one does not hold (the visible symptom
// of a non-actor goroutine blocking through the clock) panics instead of
// silently corrupting the quiescence accounting.
func TestVirtualNonActorReleasePanics(t *testing.T) {
	v := NewVirtual()
	v.Release() // the creator legitimately gives up its token
	defer func() {
		if recover() == nil {
			t.Fatal("second Release (token not held) did not panic")
		}
		v.Stop()
	}()
	v.Release()
}

// TestVirtualWaiterWakesAtProductionTime pins that a WaitTimeout waiter
// wakes at the virtual instant its channel was closed, not at some later
// quiescent point.
func TestVirtualWaiterWakesAtProductionTime(t *testing.T) {
	v := NewVirtual()
	defer v.Stop()
	ch := make(chan struct{})
	v.AfterFunc(5*time.Second, func() { close(ch) })
	v.AfterFunc(9*time.Second, func() {}) // a later timer the wake must not wait for
	if !v.WaitTimeout(ch, time.Minute) {
		t.Fatal("waiter timed out")
	}
	if got := v.Now().Sub(VirtualBase); got != 5*time.Second {
		t.Fatalf("woke at +%v, want +5s (the close instant)", got)
	}
}
