// Package clock is the time plane of the Morpheus runtime: a seam between
// code that needs timers and the source of time itself. Every timer-driven
// layer (vnet delivery, scheduler timeouts, heartbeats and failure
// detection, NAK keepalives, context sampling, policy ticks) takes a Clock
// instead of calling the time package, which makes whole experiments —
// control plane included — bit-reproducible when the deterministic Virtual
// implementation is plugged in.
//
// Two implementations exist:
//
//   - Wall() wraps the time package one-to-one; it is the default
//     everywhere and the only choice for live (udpnet) runs.
//   - Virtual (virtual.go) is a discrete-event clock: time is a counter
//     that jumps to the next timer deadline, and it only jumps when every
//     participating goroutine ("actor") is parked — all schedulers idle,
//     no deliveries in flight. Actors additionally execute one at a time
//     under a run token the clock hands out in FIFO order, so the entire
//     run is equivalent to a deterministic single-threaded execution.
package clock

import "time"

// Timer is a started timer, mirroring *time.Timer across implementations.
// Exactly one of C / the AfterFunc callback is active per timer, as with
// the time package.
type Timer interface {
	// C is the delivery channel of NewTimer/After timers; it is nil for
	// AfterFunc timers.
	C() <-chan time.Time
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
	// Reset re-arms the timer for d from now, reporting whether it was
	// still pending.
	Reset(d time.Duration) bool
}

// Ticker is a started ticker, mirroring *time.Ticker.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Clock is a source of time and timers. The Wait* and Go methods exist
// because a deterministic clock must know about every point where an actor
// blocks or forks: on the wall clock they degrade to plain channel
// operations and `go`.
type Clock interface {
	// Now returns the current time on this clock's timeline.
	Now() time.Time
	// Since returns Now().Sub(t).
	Since(t time.Time) time.Duration
	// Sleep pauses the calling actor for d. On the virtual clock this is
	// also the yield point that lets other actors (and time) progress.
	Sleep(d time.Duration)
	// After returns a channel that delivers the time after d.
	After(d time.Duration) <-chan time.Time
	// AfterFunc runs fn once after d. On the virtual clock fn runs on the
	// clock goroutine while the system is otherwise quiescent.
	AfterFunc(d time.Duration, fn func()) Timer
	// NewTimer returns a timer delivering on C after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a ticker delivering on C every d.
	NewTicker(d time.Duration) Ticker
	// Wait blocks until ch is closed (or delivers).
	Wait(ch <-chan struct{})
	// WaitTimeout blocks until ch is closed (or delivers) or d elapses,
	// reporting whether the channel fired first. A negative d means no
	// deadline. At most one value is consumed from ch, as with a select.
	WaitTimeout(ch <-chan struct{}, d time.Duration) bool
	// Go starts fn as a new actor of this clock's execution. Wall: a
	// plain goroutine. Virtual: the goroutine joins the run-token
	// rotation, so its effects serialize with every other actor.
	Go(fn func())
}

// wall implements Clock on the time package.
type wall struct{}

var wallClock Clock = wall{}

// Wall returns the process-wide wall clock.
func Wall() Clock { return wallClock }

// Or returns c, or the wall clock when c is nil. It is the idiom for
// defaulting a Clock configuration field.
func Or(c Clock) Clock {
	if c == nil {
		return wallClock
	}
	return c
}

func (wall) Now() time.Time                         { return time.Now() }    //lint:wallclock-ok the wall Clock is the seam's real-time implementation
func (wall) Since(t time.Time) time.Duration        { return time.Since(t) } //lint:wallclock-ok the wall Clock is the seam's real-time implementation
func (wall) Sleep(d time.Duration)                  { time.Sleep(d) }        //lint:wallclock-ok the wall Clock is the seam's real-time implementation
func (wall) After(d time.Duration) <-chan time.Time { return time.After(d) } //lint:wallclock-ok the wall Clock is the seam's real-time implementation

func (wall) AfterFunc(d time.Duration, fn func()) Timer {
	return wallTimer{time.AfterFunc(d, fn)} //lint:wallclock-ok the wall Clock is the seam's real-time implementation
}

func (wall) NewTimer(d time.Duration) Timer   { return wallTimer{time.NewTimer(d)} }   //lint:wallclock-ok the wall Clock is the seam's real-time implementation
func (wall) NewTicker(d time.Duration) Ticker { return wallTicker{time.NewTicker(d)} } //lint:wallclock-ok the wall Clock is the seam's real-time implementation

func (wall) Wait(ch <-chan struct{}) { <-ch }

func (wall) WaitTimeout(ch <-chan struct{}, d time.Duration) bool {
	if d < 0 {
		<-ch
		return true
	}
	t := time.NewTimer(d) //lint:wallclock-ok the wall Clock is the seam's real-time implementation
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		return false
	}
}

func (wall) Go(fn func()) { go fn() }

type wallTimer struct{ t *time.Timer }

func (w wallTimer) C() <-chan time.Time        { return w.t.C }
func (w wallTimer) Stop() bool                 { return w.t.Stop() }
func (w wallTimer) Reset(d time.Duration) bool { return w.t.Reset(d) }

type wallTicker struct{ t *time.Ticker }

func (w wallTicker) C() <-chan time.Time { return w.t.C }
func (w wallTicker) Stop()               { w.t.Stop() }
