package clock

import (
	"sync"
	"time"
)

// Virtual is a deterministic discrete-event clock. It owns a timer heap (the
// generalization of the vnet delivery heap: latency-delayed frames, protocol
// timeouts and driver sleeps are all just entries ordered by (deadline,
// registration sequence)) and a cooperative execution regime:
//
//   - Every goroutine that mutates simulation state is an *actor*. At most
//     one actor runs at a time; the rest are parked waiting for the run
//     token, which the clock grants in FIFO request order. The creator of
//     the Virtual holds the token initially, schedulers acquire it per
//     work batch (internal/appia), and Go forks new actors into the
//     rotation.
//   - Time advances only at full quiescence: no actor running, no actor
//     runnable, no blocked waiter whose channel is ready. Then the earliest
//     timer fires — and because everything else is parked, the fire (and
//     the cascade of work it posts) is a deterministic function of the
//     simulation state.
//
// The combination makes a run equivalent to a single-threaded execution
// with a fixed event order, so experiment counter matrices replay
// hash-identically at equal seeds regardless of GOMAXPROCS.
//
// Determinism contract for users: under a Virtual clock, every goroutine
// touching the simulation must be an actor (the creator, a scheduler, or a
// Go(fn) goroutine), and must block only through the clock (Sleep, Wait,
// WaitTimeout) — a bare channel receive would hold the token forever and
// wedge the run.
type Virtual struct {
	mu   sync.Mutex
	cond *sync.Cond

	now  time.Time
	seq  uint64 // timer registration sequence; breaks deadline ties
	heap []*vtimer

	running int             // actors currently holding the token (0 or 1)
	runq    []chan struct{} // FIFO of pending token grants
	waiters []*chanWaiter   // WaitTimeout blocks, polled at quiescence

	stopped bool
	done    chan struct{} // closed by Stop; releases every blocked actor
}

// vtimer is one heap entry. Exactly one of wake / fn / c / waiter is set.
type vtimer struct {
	when    time.Time
	seq     uint64
	stopped bool // lazily deleted: pop skips stopped entries
	fired   bool

	wake   chan struct{}  // Sleep wakeup: the token transfers to the sleeper
	fn     func()         // AfterFunc callback: runs on the clock goroutine
	c      chan time.Time // NewTimer/Ticker channel: non-blocking send
	period time.Duration  // >0: ticker, re-armed at each fire
	owner  *vTimer        // handle to update on ticker re-arm
	waiter *chanWaiter    // WaitTimeout deadline
}

// chanWaiter is one actor blocked in WaitTimeout: the clock polls ch at
// every quiescent point and wakes the actor (true) when it is ready, or via
// the deadline timer (false).
type chanWaiter struct {
	ch       <-chan struct{}
	wake     chan bool
	deadline *vtimer
	done     bool
}

// VirtualBase is the fixed origin of virtual timelines. Its value is
// arbitrary but deliberately not "now": timestamps must never leak wall
// time into a deterministic run.
var VirtualBase = time.Unix(1_000_000_000, 0).UTC()

// NewVirtual returns a virtual clock starting at VirtualBase. The calling
// goroutine holds the run token: it is the first actor and must release it
// through Sleep/Wait/WaitTimeout (or Stop) for anything else to run.
func NewVirtual() *Virtual {
	return NewVirtualAt(VirtualBase)
}

// NewVirtualAt is NewVirtual with an explicit origin.
func NewVirtualAt(origin time.Time) *Virtual {
	v := &Virtual{
		now:     origin,
		running: 1, // the creator
		done:    make(chan struct{}),
	}
	v.cond = sync.NewCond(&v.mu)
	go v.loop()
	return v
}

var _ Clock = (*Virtual)(nil)

// Stop shuts the clock down: the loop exits, every blocked actor is
// released (Sleeps return, WaitTimeouts fall back to real-time waits), and
// schedulers detach from the token regime. Determinism ends at Stop; call
// it only after the run's results are harvested.
func (v *Virtual) Stop() {
	v.mu.Lock()
	if v.stopped {
		v.mu.Unlock()
		return
	}
	v.stopped = true
	close(v.done)
	// Grant every queued request so no actor hangs waiting for a token
	// that will never be managed again.
	for _, g := range v.runq {
		select {
		case g <- struct{}{}:
		default:
		}
	}
	v.runq = nil
	v.cond.Broadcast()
	v.mu.Unlock()
}

// Done returns a channel closed when the clock stops. Token waits must
// select on it so teardown never deadlocks.
func (v *Virtual) Done() <-chan struct{} { return v.done }

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Sleep implements Clock: the actor releases the run token, a wake timer is
// queued at now+d, and the token comes back with the wakeup. Sleep(0) is a
// pure yield: every runnable actor and every already-due timer runs first.
func (v *Virtual) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	wake := make(chan struct{}, 1)
	armed := func() bool {
		v.mu.Lock()
		defer v.mu.Unlock()
		if v.stopped {
			return false
		}
		v.push(&vtimer{when: v.now.Add(d), wake: wake})
		v.decRunningLocked()
		return true
	}()
	if !armed {
		return
	}
	select {
	case <-wake:
	case <-v.done:
	}
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time { return v.NewTimer(d).C() }

// AfterFunc implements Clock. fn runs on the clock goroutine at a quiescent
// point; anything it posts (scheduler work, new timers) executes strictly
// after it returns.
func (v *Virtual) AfterFunc(d time.Duration, fn func()) Timer {
	return v.newTimer(d, fn, nil, 0)
}

// NewTimer implements Clock.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	return v.newTimer(d, nil, make(chan time.Time, 1), 0)
}

// NewTicker implements Clock.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive Ticker period")
	}
	return vTicker{v.newTimer(d, nil, make(chan time.Time, 1), d)}
}

func (v *Virtual) newTimer(d time.Duration, fn func(), c chan time.Time, period time.Duration) *vTimer {
	if d < 0 {
		d = 0
	}
	h := &vTimer{v: v, fn: fn, c: c}
	v.mu.Lock()
	t := &vtimer{when: v.now.Add(d), fn: fn, c: c, period: period, owner: h}
	h.cur = t
	if v.stopped {
		// Never armed: it must also report not-pending from Stop/Reset.
		t.stopped = true
	} else {
		v.push(t)
	}
	v.mu.Unlock()
	return h
}

// Wait implements Clock: WaitTimeout without a deadline.
func (v *Virtual) Wait(ch <-chan struct{}) { v.WaitTimeout(ch, -1) }

// WaitTimeout implements Clock. The actor releases the run token and is
// woken — token in hand — either when ch becomes ready (checked at every
// quiescent point, so the wake happens at the exact virtual time the ready
// state was produced) or when the virtual deadline fires.
func (v *Virtual) WaitTimeout(ch <-chan struct{}, d time.Duration) bool {
	v.mu.Lock()
	if v.stopped {
		v.mu.Unlock()
		return wall{}.WaitTimeout(ch, d)
	}
	w := &chanWaiter{ch: ch, wake: make(chan bool, 1)}
	func() {
		defer v.mu.Unlock()
		if d >= 0 {
			w.deadline = &vtimer{when: v.now.Add(d), waiter: w}
			v.push(w.deadline)
		}
		v.waiters = append(v.waiters, w)
		v.decRunningLocked()
	}()
	select {
	case ok := <-w.wake:
		return ok
	case <-v.done:
		// Stopped mid-wait: fall back to a non-blocking poll. (The token
		// regime is gone, so there is nothing left to coordinate.)
		select {
		case <-ch:
			return true
		default:
			return false
		}
	}
}

// Go implements Clock: fn becomes a new actor. It is queued for the run
// token immediately (in the caller's deterministic order) and starts once
// granted; it must block only through the clock and releases the token when
// it returns.
func (v *Virtual) Go(fn func()) {
	g := make(chan struct{}, 1)
	v.EnqueueRunnable(g)
	go func() {
		select {
		case <-g:
		case <-v.done:
		}
		defer v.Release()
		fn()
	}()
}

// EnqueueRunnable queues a token request. It is the scheduler-side hook:
// internal/appia calls it when a parked scheduler receives work, and the
// grant is delivered on g (buffered, capacity 1) once every earlier request
// has run and released. After Stop the grant is immediate and unmanaged.
func (v *Virtual) EnqueueRunnable(g chan struct{}) {
	v.mu.Lock()
	if v.stopped {
		v.mu.Unlock()
		select {
		case g <- struct{}{}:
		default:
		}
		return
	}
	v.runq = append(v.runq, g)
	v.cond.Signal()
	v.mu.Unlock()
}

// Release returns the run token. Callers must hold it (by grant, wake, or
// clock construction).
func (v *Virtual) Release() {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.stopped {
		v.decRunningLocked()
	}
}

// decRunningLocked releases one unit of run-token accounting. Going
// negative means a goroutine outside the actor regime called a blocking
// clock method (or Release without holding the token): that would let time
// advance while a real actor is mid-execution — the exact nondeterminism
// this clock exists to eliminate — so it fails loudly instead. Must hold
// v.mu.
func (v *Virtual) decRunningLocked() {
	if v.running <= 0 {
		panic("clock: run token released by a goroutine that does not hold it — " +
			"under a virtual clock every simulation goroutine must be an actor " +
			"(the clock's creator, a scheduler, or clock.Go) and block only via " +
			"Sleep/Wait/WaitTimeout")
	}
	v.running--
	v.cond.Signal()
}

// CancelRunnable withdraws a pending token request (scheduler teardown): if
// the request is still queued it is removed; if it was already granted the
// grant is consumed and the token released, so the rotation never wedges on
// an abandoned grant.
func (v *Virtual) CancelRunnable(g chan struct{}) {
	v.mu.Lock()
	for i, q := range v.runq {
		if q == g {
			v.runq = append(v.runq[:i], v.runq[i+1:]...)
			v.mu.Unlock()
			return
		}
	}
	select {
	case <-g:
		if !v.stopped {
			v.decRunningLocked()
		}
	default:
	}
	v.mu.Unlock()
}

// loop is the clock goroutine: grant runnable actors, wake ready waiters,
// and — only at full quiescence — advance time to the next deadline.
func (v *Virtual) loop() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for {
		if v.stopped {
			return
		}
		if v.running > 0 {
			v.cond.Wait()
			continue
		}
		// 1. Run every runnable actor (FIFO) before anything else: work at
		// the current instant completes before time moves.
		if len(v.runq) > 0 {
			g := v.runq[0]
			v.runq = v.runq[1:]
			v.running++
			select {
			case g <- struct{}{}:
			default: // abandoned grant (CancelRunnable raced): drop token
				v.running--
			}
			continue
		}
		// 2. Wake the first waiter whose channel became ready during the
		// work above — at the current virtual time, before any advance.
		if v.wakeReadyWaiter() {
			continue
		}
		// 3. Quiescent: advance to the earliest timer and fire it.
		t := v.pop()
		if t == nil {
			// Nothing scheduled at all: idle until an actor appears.
			v.cond.Wait()
			continue
		}
		if t.when.After(v.now) {
			v.now = t.when
		}
		t.fired = true
		switch {
		case t.waiter != nil:
			w := t.waiter
			if w.done {
				continue // already woken by its channel
			}
			w.done = true
			v.removeWaiter(w)
			v.running++
			w.wake <- false
		case t.wake != nil:
			v.running++
			t.wake <- struct{}{}
		case t.fn != nil:
			v.running++
			v.mu.Unlock()
			t.fn()
			v.mu.Lock()
			v.decRunningLocked()
		default:
			select {
			case t.c <- v.now:
			default: // receiver behind: drop the tick, as time.Ticker does
			}
			if t.period > 0 {
				nt := &vtimer{when: t.when.Add(t.period), c: t.c, period: t.period, owner: t.owner}
				t.owner.cur = nt
				v.push(nt)
			}
		}
	}
}

// wakeReadyWaiter polls waiters in registration order and wakes the first
// whose channel is ready, consuming at most one value (select semantics).
// Must hold v.mu.
func (v *Virtual) wakeReadyWaiter() bool {
	for _, w := range v.waiters {
		select {
		case <-w.ch:
			w.done = true
			if w.deadline != nil {
				w.deadline.stopped = true
			}
			v.removeWaiter(w)
			v.running++
			w.wake <- true
			return true
		default:
		}
	}
	return false
}

// removeWaiter deletes w preserving registration order. Must hold v.mu.
func (v *Virtual) removeWaiter(w *chanWaiter) {
	for i, cand := range v.waiters {
		if cand == w {
			v.waiters = append(v.waiters[:i], v.waiters[i+1:]...)
			return
		}
	}
}

// push inserts into the (when, seq) min-heap. Must hold v.mu.
func (v *Virtual) push(t *vtimer) {
	v.seq++
	t.seq = v.seq
	h := append(v.heap, t)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	v.heap = h
	v.cond.Signal()
}

// pop removes and returns the earliest live timer, or nil. Must hold v.mu.
func (v *Virtual) pop() *vtimer {
	for len(v.heap) > 0 {
		h := v.heap
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h[last] = nil
		h = h[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(h) && h[l].less(h[small]) {
				small = l
			}
			if r < len(h) && h[r].less(h[small]) {
				small = r
			}
			if small == i {
				break
			}
			h[i], h[small] = h[small], h[i]
			i = small
		}
		v.heap = h
		if top.stopped {
			continue
		}
		return top
	}
	return nil
}

func (t *vtimer) less(o *vtimer) bool {
	if t.when.Equal(o.when) {
		return t.seq < o.seq
	}
	return t.when.Before(o.when)
}

// vTimer is the handle returned for virtual timers and tickers.
type vTimer struct {
	v   *Virtual
	fn  func()
	c   chan time.Time
	cur *vtimer // current heap entry; replaced on Reset / ticker re-arm
}

var (
	_ Timer  = (*vTimer)(nil)
	_ Ticker = vTicker{}
)

// vTicker adapts a periodic vTimer to the Ticker interface.
type vTicker struct{ *vTimer }

// Stop implements Ticker.
func (t vTicker) Stop() {
	if t.vTimer != nil {
		t.vTimer.Stop()
	}
}

// C implements Timer/Ticker; nil for AfterFunc timers, as with time.Timer.
func (h *vTimer) C() <-chan time.Time {
	if h.fn != nil {
		return nil
	}
	return h.c
}

// Stop implements Timer/Ticker.
func (h *vTimer) Stop() bool {
	h.v.mu.Lock()
	defer h.v.mu.Unlock()
	active := h.cur != nil && !h.cur.stopped && !h.cur.fired
	if h.cur != nil {
		h.cur.stopped = true
	}
	return active
}

// Reset implements Timer: re-arms for d from now.
func (h *vTimer) Reset(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	h.v.mu.Lock()
	defer h.v.mu.Unlock()
	active := h.cur != nil && !h.cur.stopped && !h.cur.fired
	if h.cur != nil {
		h.cur.stopped = true
	}
	period := time.Duration(0)
	if h.cur != nil {
		period = h.cur.period
	}
	nt := &vtimer{when: h.v.now.Add(d), fn: h.fn, c: h.c, period: period, owner: h}
	h.cur = nt
	if h.v.stopped {
		nt.stopped = true // never armed: not pending
	} else {
		h.v.push(nt)
	}
	return active
}
