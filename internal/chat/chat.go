// Package chat implements the paper's validation application (§4): a
// multi-user chat where each group of users, defined by their interests,
// is supported by a multicast group. The application relies on the group
// communication suite to exchange data and is oblivious to the stack
// reconfigurations happening underneath — the adaptation is transparent.
package chat

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/clock"
)

// Message is one chat line.
type Message struct {
	// Room is the interest group.
	Room string
	// From is the user's display name.
	From string
	// Sender is the originating node.
	Sender appia.NodeID
	// Text is the chat line.
	Text string
	// Seq is the sender-local message number.
	Seq uint64
}

// Encode frames a message as a payload for the group channel.
func (m Message) Encode() []byte {
	msg := appia.NewMessage([]byte(m.Text))
	msg.PushUvarint(m.Seq)
	msg.PushUvarint(uint64(uint32(m.Sender)))
	msg.PushString(m.From)
	msg.PushString(m.Room)
	return append([]byte(nil), msg.Bytes()...)
}

// Decode reverses Encode.
func Decode(payload []byte) (Message, error) {
	msg := appia.FromWire(payload)
	room, err := msg.PopString()
	if err != nil {
		return Message{}, fmt.Errorf("chat: %w", err)
	}
	from, err := msg.PopString()
	if err != nil {
		return Message{}, fmt.Errorf("chat: %w", err)
	}
	senderU, err := msg.PopUvarint()
	if err != nil {
		return Message{}, fmt.Errorf("chat: %w", err)
	}
	seq, err := msg.PopUvarint()
	if err != nil {
		return Message{}, fmt.Errorf("chat: %w", err)
	}
	return Message{
		Room:   room,
		From:   from,
		Sender: appia.NodeID(uint32(senderU)),
		Seq:    seq,
		Text:   string(msg.Bytes()),
	}, nil
}

// Sender is the sending half the client needs from its node; it is
// satisfied by *morpheus.Node.
type Sender interface {
	Send(payload []byte) error
}

// Client is one chat participant.
type Client struct {
	user string
	room string
	self appia.NodeID

	mu      sync.Mutex
	sender  Sender
	seq     uint64
	history []Message
	subs    []func(Message)
}

// ErrNotBound is returned by Say before Bind.
var ErrNotBound = errors.New("chat: client not bound to a node")

// NewClient creates a participant. Receive must be wired as the node's
// OnMessage before or at node start; Bind attaches the sending side.
func NewClient(user, room string, self appia.NodeID) *Client {
	return &Client{user: user, room: room, self: self}
}

// Bind attaches the node used for sending.
func (c *Client) Bind(s Sender) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sender = s
}

// Receive is the node's OnMessage handler.
func (c *Client) Receive(from appia.NodeID, payload []byte) {
	m, err := Decode(payload)
	if err != nil {
		return // non-chat traffic on the channel
	}
	if m.Room != c.room {
		return // different interest group
	}
	c.mu.Lock()
	c.history = append(c.history, m)
	subs := make([]func(Message), len(c.subs))
	copy(subs, c.subs)
	c.mu.Unlock()
	for _, fn := range subs {
		fn(m)
	}
}

// OnMessage registers a delivery callback (called on the node's scheduler
// goroutine; return quickly).
func (c *Client) OnMessage(fn func(Message)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subs = append(c.subs, fn)
}

// Say multicasts a chat line to the room.
func (c *Client) Say(text string) error {
	c.mu.Lock()
	s := c.sender
	c.seq++
	m := Message{Room: c.room, From: c.user, Sender: c.self, Text: text, Seq: c.seq}
	c.mu.Unlock()
	if s == nil {
		return ErrNotBound
	}
	return s.Send(m.Encode())
}

// History returns a copy of everything delivered so far (all senders,
// including our own messages via the group's self-delivery).
func (c *Client) History() []Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := make([]Message, len(c.history))
	copy(cp, c.history)
	return cp
}

// Delivered returns the number of delivered messages.
func (c *Client) Delivered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.history)
}

// Script is a scripted chat workload: Count lines at Rate lines/second
// (the paper paced 40 000 messages at 10 msg/s). Rate <= 0 sends flat out.
type Script struct {
	Count int
	Rate  float64
	// Line generates the i-th text; nil means a default.
	Line func(i int) string
	// Clock paces the Rate ticker; nil means the wall clock. Injecting a
	// virtual clock makes a paced script run deterministically (and
	// instantly) inside simulated experiments.
	Clock clock.Clock
}

// Run executes the workload; it returns after the last send is submitted.
// Pacing blocks through the clock seam (never a bare channel receive), so
// the caller may be a virtual-clock actor: each send then happens at an
// exact virtual instant i/Rate seconds in.
func (s Script) Run(c *Client) error {
	line := s.Line
	if line == nil {
		line = func(i int) string { return fmt.Sprintf("msg %06d", i) }
	}
	clk := clock.Or(s.Clock)
	var interval time.Duration
	if s.Rate > 0 {
		interval = time.Duration(float64(time.Second) / s.Rate)
	}
	for i := 0; i < s.Count; i++ {
		if interval > 0 {
			clk.Sleep(interval)
		}
		if err := c.Say(line(i)); err != nil {
			return fmt.Errorf("chat: scripted send %d: %w", i, err)
		}
	}
	return nil
}
