package chat

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/clock"
)

func TestMessageEncodeDecode(t *testing.T) {
	in := Message{Room: "lobby", From: "ana", Sender: 7, Text: "olá", Seq: 42}
	out, err := Decode(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("roundtrip: %+v != %+v", out, in)
	}
}

func TestMessageEncodeDecodeProperty(t *testing.T) {
	f := func(room, from, text string, sender uint32, seq uint64) bool {
		in := Message{Room: room, From: from, Sender: appia.NodeID(sender), Text: text, Seq: seq}
		out, err := Decode(in.Encode())
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte{0xff, 0xff}); err == nil {
		t.Fatal("garbage decoded")
	}
}

// fakeSender records sent payloads.
type fakeSender struct {
	mu       sync.Mutex
	payloads [][]byte
	err      error
}

func (f *fakeSender) Send(p []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return f.err
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	f.payloads = append(f.payloads, cp)
	return nil
}

func TestClientSayBeforeBind(t *testing.T) {
	c := NewClient("ana", "lobby", 1)
	if err := c.Say("hi"); !errors.Is(err, ErrNotBound) {
		t.Fatalf("err = %v", err)
	}
}

func TestClientSayReceiveLoop(t *testing.T) {
	alice := NewClient("alice", "lobby", 1)
	bob := NewClient("bob", "lobby", 2)
	s := &fakeSender{}
	alice.Bind(s)

	var got []Message
	var mu sync.Mutex
	bob.OnMessage(func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})

	if err := alice.Say("first"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Say("second"); err != nil {
		t.Fatal(err)
	}
	for _, p := range s.payloads {
		bob.Receive(1, p)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0].Text != "first" || got[1].Text != "second" {
		t.Fatalf("got = %+v", got)
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("sequence numbers: %d, %d", got[0].Seq, got[1].Seq)
	}
	if bob.Delivered() != 2 {
		t.Fatalf("Delivered = %d", bob.Delivered())
	}
	if h := bob.History(); len(h) != 2 || h[0].From != "alice" {
		t.Fatalf("history = %+v", h)
	}
}

func TestClientIgnoresOtherRooms(t *testing.T) {
	games := NewClient("ana", "games", 1)
	work := NewClient("ana", "work", 1)
	s := &fakeSender{}
	games.Bind(s)
	if err := games.Say("gg"); err != nil {
		t.Fatal(err)
	}
	work.Receive(1, s.payloads[0])
	if work.Delivered() != 0 {
		t.Fatal("message crossed interest groups")
	}
}

func TestClientIgnoresNonChatTraffic(t *testing.T) {
	c := NewClient("ana", "lobby", 1)
	c.Receive(2, []byte{0x01})
	if c.Delivered() != 0 {
		t.Fatal("non-chat payload delivered")
	}
}

func TestScriptFlatOut(t *testing.T) {
	c := NewClient("bot", "lobby", 1)
	s := &fakeSender{}
	c.Bind(s)
	if err := (Script{Count: 25}).Run(c); err != nil {
		t.Fatal(err)
	}
	if len(s.payloads) != 25 {
		t.Fatalf("sent %d", len(s.payloads))
	}
}

func TestScriptPaced(t *testing.T) {
	c := NewClient("bot", "lobby", 1)
	s := &fakeSender{}
	c.Bind(s)
	start := time.Now()
	if err := (Script{Count: 5, Rate: 100}).Run(c); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 40*time.Millisecond {
		t.Fatalf("5 msgs at 100/s took only %v", took)
	}
}

// TestScriptPacedVirtualClock pins that a paced script blocks only through
// the clock seam: under an injected virtual clock two minutes of pacing run
// instantly, each send lands at an exact virtual instant, and nothing
// wedges on a bare channel receive (the regression the ticker-based pacer
// would reintroduce).
func TestScriptPacedVirtualClock(t *testing.T) {
	v := clock.NewVirtual()
	defer v.Stop()
	c := NewClient("bot", "lobby", 1)
	s := &fakeSender{}
	c.Bind(s)
	start := v.Now()
	wallStart := time.Now()
	if err := (Script{Count: 1200, Rate: 10, Clock: v}).Run(c); err != nil {
		t.Fatal(err)
	}
	if len(s.payloads) != 1200 {
		t.Fatalf("sent %d, want 1200", len(s.payloads))
	}
	if got, want := v.Now().Sub(start), 1200*(time.Second/10); got != want {
		t.Fatalf("virtual pacing advanced %v, want exactly %v", got, want)
	}
	if real := time.Since(wallStart); real > 10*time.Second {
		t.Fatalf("virtual pacing took %v of real time", real)
	}
}

func TestScriptPropagatesError(t *testing.T) {
	c := NewClient("bot", "lobby", 1)
	s := &fakeSender{err: errors.New("down")}
	c.Bind(s)
	if err := (Script{Count: 1}).Run(c); err == nil {
		t.Fatal("send error swallowed")
	}
}
