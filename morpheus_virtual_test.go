package morpheus_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"morpheus"
	"morpheus/internal/vnet"
)

// TestMultiGroupVirtualStress is the virtual-time concurrency stress test:
// three nodes on a virtual-clock world host groups that are joined, flooded
// from every member concurrently, and left — with a second wave of joins
// landing while the first wave is still under load. It asserts
//
//   - exactly-once, zero-leak delivery in every group at every member,
//   - and bit-identical delivery traces across two equal-seed runs —
//     the determinism guarantee of the clock plane, exercised through the
//     full Join/Send/Leave surface rather than the experiment drivers.
//
// Under -race this doubles as the proof that the run-token handoffs carry
// the happens-before edges the serialized execution relies on.
func TestMultiGroupVirtualStress(t *testing.T) {
	const seed = 23
	first := runVirtualStress(t, seed)
	second := runVirtualStress(t, seed)
	if first != second {
		t.Fatalf("equal-seed virtual stress runs diverged:\nrun1:\n%s\nrun2:\n%s", first, second)
	}
}

// runVirtualStress executes one full stress scenario and returns the
// canonical delivery trace (per node, per group, in delivery order).
func runVirtualStress(t *testing.T, seed int64) string {
	t.Helper()
	const (
		msgsPerSender = 8
		nodesN        = 3
	)
	clk := morpheus.NewVirtualClock()
	defer clk.Stop()
	w := morpheus.NewWorldWithClock(seed, clk)
	defer w.Close()
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})

	members := []morpheus.NodeID{1, 2, 3}
	type key struct {
		node  morpheus.NodeID
		group string
	}
	var traceMu sync.Mutex
	traces := make(map[key][]string)

	nodes := make(map[morpheus.NodeID]*morpheus.Node, nodesN)
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	for _, id := range members {
		nd, err := morpheus.Start(morpheus.Config{
			World: w, ID: id, Kind: morpheus.Fixed, Segments: []string{"lan"},
			Members:         members,
			ContextInterval: 40 * time.Millisecond,
			EvalInterval:    50 * time.Millisecond,
			PublishOnChange: true,
		})
		if err != nil {
			t.Fatalf("start node %d: %v", id, err)
		}
		nodes[id] = nd
	}

	join := func(groupName string) map[morpheus.NodeID]*morpheus.Group {
		gs := make(map[morpheus.NodeID]*morpheus.Group, nodesN)
		for _, id := range members {
			id := id
			k := key{node: id, group: groupName}
			g, err := nodes[id].Join(groupName, morpheus.GroupConfig{
				Members: members,
				OnCast: func(ev *morpheus.CastEvent) {
					traceMu.Lock()
					traces[k] = append(traces[k], fmt.Sprintf("%s:%d:%d:%s", ev.Group, ev.Origin, ev.Seq, ev.Msg.Bytes()))
					traceMu.Unlock()
				},
			})
			if err != nil {
				t.Fatalf("node %d join %s: %v", id, groupName, err)
			}
			gs[id] = g
		}
		return gs
	}

	// flood starts one sender actor per member of the group and returns a
	// join function that blocks (through the clock) until all are done.
	flood := func(groupName string, gs map[morpheus.NodeID]*morpheus.Group) func() {
		dones := make([]chan struct{}, 0, len(members))
		for _, id := range members {
			id := id
			d := make(chan struct{})
			dones = append(dones, d)
			clk.Go(func() {
				defer close(d)
				for i := 0; i < msgsPerSender; i++ {
					payload := fmt.Sprintf("g=%s;n=%d;i=%d", groupName, id, i)
					if err := gs[id].Send([]byte(payload)); err != nil {
						t.Errorf("send %s from %d: %v", groupName, id, err)
						return
					}
					clk.Sleep(time.Millisecond)
				}
			})
		}
		return func() {
			for _, d := range dones {
				clk.Wait(d)
			}
		}
	}

	delivered := func(groupName string) bool {
		want := nodesN * msgsPerSender
		traceMu.Lock()
		defer traceMu.Unlock()
		for _, id := range members {
			if len(traces[key{node: id, group: groupName}]) < want {
				return false
			}
		}
		return true
	}
	waitDelivered := func(groupName string) {
		deadline := clk.Now().Add(30 * time.Second)
		for clk.Now().Before(deadline) {
			if delivered(groupName) {
				return
			}
			clk.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("group %s: deliveries incomplete", groupName)
	}

	// Wave 1: two groups under load.
	wave1 := map[string]map[morpheus.NodeID]*morpheus.Group{
		"stress-a": join("stress-a"),
		"stress-b": join("stress-b"),
	}
	joinA := flood("stress-a", wave1["stress-a"])
	joinB := flood("stress-b", wave1["stress-b"])

	// Wave 2 lands while wave 1 is still sending: joins from the driver
	// interleave with the sender actors on the virtual timeline.
	wave2 := map[string]map[morpheus.NodeID]*morpheus.Group{
		"stress-c": join("stress-c"),
	}
	joinC := flood("stress-c", wave2["stress-c"])

	joinA()
	joinB()
	joinC()
	for _, name := range []string{"stress-a", "stress-b", "stress-c"} {
		waitDelivered(name)
	}

	// Leave wave 1 on every node while wave 2 stays live, then flood a
	// fourth group to verify the runtime is undisturbed by the departures.
	for _, id := range members {
		if err := wave1["stress-a"][id].Leave(); err != nil {
			t.Fatalf("node %d leave stress-a: %v", id, err)
		}
	}
	wave3 := join("stress-d")
	joinD := flood("stress-d", wave3)
	joinD()
	waitDelivered("stress-d")

	// Exactly-once, zero-leak verification per (node, group).
	traceMu.Lock()
	defer traceMu.Unlock()
	keys := make([]key, 0, len(traces))
	for k := range traces {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].group < keys[j].group
	})
	var b strings.Builder
	for _, k := range keys {
		entries := traces[k]
		seen := make(map[string]bool, len(entries))
		for _, e := range entries {
			if !strings.HasPrefix(e, k.group+":") || !strings.Contains(e, "g="+k.group+";") {
				t.Fatalf("node %d group %s: cross-group leak: %q", k.node, k.group, e)
			}
			if seen[e] {
				t.Fatalf("node %d group %s: duplicate delivery: %q", k.node, k.group, e)
			}
			seen[e] = true
		}
		if len(entries) != nodesN*msgsPerSender {
			t.Fatalf("node %d group %s: delivered %d, want %d", k.node, k.group, len(entries), nodesN*msgsPerSender)
		}
		fmt.Fprintf(&b, "node=%d group=%s\n%s\n", k.node, k.group, strings.Join(entries, "\n"))
	}
	return b.String()
}
