package morpheus

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/cocaditem"
	"morpheus/internal/core"
	"morpheus/internal/vnet"
)

// collector gathers delivered payloads thread-safely.
type collector struct {
	mu   sync.Mutex
	msgs []string
}

func (c *collector) add(from NodeID, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, string(payload))
}

func (c *collector) list() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := make([]string, len(c.msgs))
	copy(cp, c.msgs)
	return cp
}

func eventually(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

// hybridWorld builds the paper's testbed: a wired LAN and a wireless cell.
func hybridWorld(t *testing.T, seed int64) *vnet.World {
	t.Helper()
	w := vnet.NewWorld(seed)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})
	w.AddSegment(vnet.SegmentConfig{Name: "wlan", Wireless: true})
	return w
}

func TestNodeStartValidation(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	w := hybridWorld(t, 1)
	if _, err := Start(Config{World: w}); err != ErrNoMembers {
		t.Fatalf("err = %v, want ErrNoMembers", err)
	}
}

func TestPlainGroupMessaging(t *testing.T) {
	w := hybridWorld(t, 2)
	members := []NodeID{1, 2, 3}
	var cols [3]collector
	var nodes []*Node
	for i, id := range members {
		i := i
		n, err := Start(Config{
			World: w, ID: id, Kind: Fixed, Members: members,
			OnMessage: cols[i].add,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		nodes = append(nodes, n)
	}
	if err := nodes[0].Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := nodes[2].Send([]byte("world")); err != nil {
		t.Fatal(err)
	}
	for i := range cols {
		i := i
		eventually(t, 5*time.Second, fmt.Sprintf("node %d delivers both", i+1), func() bool {
			return len(cols[i].list()) == 2
		})
	}
	if nodes[0].ConfigName() != core.PlainConfigName {
		t.Fatalf("config = %q", nodes[0].ConfigName())
	}
}

// TestHybridAdaptationDeploysMecho is the paper's core scenario: a chat
// group of fixed PCs and one PDA. The coordinator must detect the hybrid
// context (via Cocaditem's device-class topic) and reconfigure everyone
// from the plain fan-out stack to Mecho, after which the mobile sends one
// unicast per multicast.
func TestHybridAdaptationDeploysMecho(t *testing.T) {
	w := hybridWorld(t, 3)
	members := []NodeID{1, 2, 10}
	var reconfigured sync.Map
	var cols [3]collector
	mk := func(i int, id NodeID, kind Kind) *Node {
		n, err := Start(Config{
			World: w, ID: id, Kind: kind, Members: members,
			Policies:        []Policy{core.HybridMechoPolicy{}},
			ContextInterval: 30 * time.Millisecond,
			EvalInterval:    50 * time.Millisecond,
			PublishOnChange: true,
			OnMessage:       cols[i].add,
			OnReconfigured: func(epoch uint64, name string, took time.Duration) {
				reconfigured.Store(epoch, name)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		return n
	}
	n1 := mk(0, 1, Fixed)
	n2 := mk(1, 2, Fixed)
	mob := mk(2, 10, Mobile)
	_ = n2

	// The coordinator (node 1) should detect the hybrid group and deploy
	// Mecho with a fixed relay on every node.
	for _, n := range []*Node{n1, n2, mob} {
		n := n
		eventually(t, 10*time.Second, fmt.Sprintf("node %d deploys mecho", n.ID()), func() bool {
			return n.ConfigName() == core.MechoConfigName(1) && n.Epoch() >= 2
		})
	}

	// After adaptation: mobile multicasts cost exactly one transmission.
	mob.VNode().ResetCounters()
	const k = 10
	for i := 0; i < k; i++ {
		if err := mob.Send([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := range cols {
		i := i
		eventually(t, 10*time.Second, fmt.Sprintf("node %d delivers %d post-adaptation", i, k), func() bool {
			return len(cols[i].list()) >= k
		})
	}
	tx := mob.VNode().Counters().Tx[ClassData].Msgs
	if tx != k {
		t.Fatalf("mobile transmitted %d data messages for %d casts after Mecho; want exactly %d", tx, k, k)
	}
}

// TestMessagesSurviveReconfiguration checks the transparency promise:
// payloads sent while the stack is being replaced are buffered and arrive.
func TestMessagesSurviveReconfiguration(t *testing.T) {
	w := hybridWorld(t, 4)
	members := []NodeID{1, 2, 10}
	var cols [3]collector
	var nodes []*Node
	kinds := []Kind{Fixed, Fixed, Mobile}
	for i, id := range members {
		n, err := Start(Config{
			World: w, ID: id, Kind: kinds[i], Members: members,
			Policies:        []Policy{core.HybridMechoPolicy{}},
			ContextInterval: 30 * time.Millisecond,
			EvalInterval:    50 * time.Millisecond,
			PublishOnChange: true,
			OnMessage:       cols[i].add,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		nodes = append(nodes, n)
	}
	// Fire continuously across the adaptation window.
	const k = 60
	for i := 0; i < k; i++ {
		if err := nodes[0].Send([]byte(fmt.Sprintf("c%03d", i))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	eventually(t, 15*time.Second, "reconfiguration happened", func() bool {
		return nodes[0].Epoch() >= 2
	})
	for i := range cols {
		i := i
		eventually(t, 15*time.Second, fmt.Sprintf("node %d delivered all %d across reconfig", i, k), func() bool {
			return len(cols[i].list()) >= k
		})
	}
}

// TestErrorRecoveryPolicySwitchesToFEC drives the §2 motivation end to end:
// rising measured loss flips the group from ARQ to FEC.
func TestErrorRecoveryPolicySwitchesToFEC(t *testing.T) {
	w := vnet.NewWorld(5)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "lan"})
	members := []NodeID{1, 2}

	// The loss "measurement" is a context retriever reading a shared
	// variable, standing in for NIC error counters.
	var lossMu sync.Mutex
	loss := 0.0
	setLoss := func(v float64) {
		lossMu.Lock()
		loss = v
		lossMu.Unlock()
	}
	lossRetriever := cocaditem.FuncRetriever{
		TopicName: cocaditem.TopicLinkLoss,
		Fn: func() (float64, string) {
			lossMu.Lock()
			defer lossMu.Unlock()
			return loss, ""
		},
	}

	var nodes []*Node
	for _, id := range members {
		n, err := Start(Config{
			World: w, ID: id, Kind: Fixed, Members: members,
			InitialConfig:     core.ArqConfig(),
			InitialConfigName: core.ArqConfigName,
			Policies:          []Policy{core.ErrorRecoveryPolicy{}},
			Retrievers:        []cocaditem.Retriever{lossRetriever},
			ContextInterval:   30 * time.Millisecond,
			EvalInterval:      50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		nodes = append(nodes, n)
	}
	// Low loss: stays ARQ.
	time.Sleep(300 * time.Millisecond)
	if got := nodes[0].ConfigName(); got != core.ArqConfigName {
		t.Fatalf("low loss config = %q", got)
	}
	// High loss: must switch to FEC.
	setLoss(0.15)
	for _, n := range nodes {
		n := n
		eventually(t, 10*time.Second, "switch to fec", func() bool {
			return n.ConfigName() == core.FecConfigName
		})
	}
	// Loss subsides: back to ARQ (hysteresis band crossed).
	setLoss(0.0)
	for _, n := range nodes {
		n := n
		eventually(t, 10*time.Second, "switch back to arq", func() bool {
			return n.ConfigName() == core.ArqConfigName
		})
	}
}

func TestContextDissemination(t *testing.T) {
	w := hybridWorld(t, 6)
	members := []NodeID{1, 10}
	n1, err := Start(Config{
		World: w, ID: 1, Kind: Fixed, Members: members,
		ContextInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n1.Close() })
	mob, err := Start(Config{
		World: w, ID: 10, Kind: Mobile, Members: members,
		Energy:          func() *vnet.EnergyConfig { e := vnet.DefaultMobileEnergy(); return &e }(),
		ContextInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mob.Close() })

	// Node 1 must learn, through Cocaditem, that node 10 is mobile and
	// what its battery level is.
	eventually(t, 5*time.Second, "remote device class disseminated", func() bool {
		sm, ok := n1.Context().Latest(cocaditem.TopicDeviceClass, 10)
		return ok && sm.Str == "mobile"
	})
	eventually(t, 5*time.Second, "remote battery disseminated", func() bool {
		sm, ok := n1.Context().Latest(cocaditem.TopicBattery, 10)
		return ok && sm.Num > 0.9
	})
	// Subscription API delivers matching samples.
	got := make(chan Sample, 1)
	n1.Context().Subscribe(cocaditem.TopicBattery, func(s Sample) {
		if s.Node == 10 {
			select {
			case got <- s:
			default:
			}
		}
	})
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber never notified")
	}
}

// TestControlChannelSurvivesMemberCrash: the control group evicts a dead
// node and adaptation continues among survivors.
func TestControlChannelSurvivesMemberCrash(t *testing.T) {
	w := hybridWorld(t, 7)
	members := []NodeID{1, 2, 3}
	var nodes []*Node
	for _, id := range members {
		n, err := Start(Config{
			World: w, ID: id, Kind: Fixed, Members: members,
			Heartbeat:    20 * time.Millisecond,
			SuspectAfter: 120 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		nodes = append(nodes, n)
	}
	time.Sleep(200 * time.Millisecond)
	nodes[2].VNode().SetDown(true)
	// Survivors keep messaging.
	var delivered int
	var mu sync.Mutex
	done := make(chan struct{})
	nodes[1].Context().Subscribe(cocaditem.TopicDeviceClass, func(s Sample) {
		mu.Lock()
		delivered++
		if delivered > 3 {
			select {
			case <-done:
			default:
				close(done)
			}
		}
		mu.Unlock()
	})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("context flow stopped after member crash")
	}
}

// TestRelayCrashFailsOver is the strongest adaptation scenario: the fixed
// node relaying for the mobile crashes. The control group's failure
// detector evicts it, a new control coordinator takes over if needed, the
// hybrid policy re-evaluates against the surviving membership, and the
// group redeploys Mecho with the next fixed node as relay — with the
// crashed node's stale data channel flushed around it.
func TestRelayCrashFailsOver(t *testing.T) {
	w := hybridWorld(t, 11)
	members := []NodeID{1, 2, 10}
	kinds := map[NodeID]Kind{1: Fixed, 2: Fixed, 10: Mobile}
	var cols [3]collector
	nodes := make(map[NodeID]*Node, 3)
	for i, id := range members {
		n, err := Start(Config{
			World: w, ID: id, Kind: kinds[id], Members: members,
			Policies:        []Policy{core.HybridMechoPolicy{}},
			ContextInterval: 30 * time.Millisecond,
			EvalInterval:    50 * time.Millisecond,
			PublishOnChange: true,
			Heartbeat:       20 * time.Millisecond,
			SuspectAfter:    150 * time.Millisecond,
			QuiesceTimeout:  3 * time.Second,
			OnMessage:       cols[i].add,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		nodes[id] = n
	}
	// Phase 1: adaptation picks node 1 as relay.
	for _, n := range nodes {
		n := n
		eventually(t, 10*time.Second, "initial mecho", func() bool {
			return n.ConfigName() == core.MechoConfigName(1)
		})
	}
	// Phase 2: the relay dies.
	nodes[1].VNode().SetDown(true)
	for _, id := range []NodeID{2, 10} {
		n := nodes[id]
		eventually(t, 20*time.Second, fmt.Sprintf("node %d fails over to relay 2", id), func() bool {
			return n.ConfigName() == core.MechoConfigName(2)
		})
	}
	// Phase 3: traffic flows on the failed-over stack, and the mobile
	// still pays one transmission per cast.
	mob := nodes[10]
	mob.VNode().ResetCounters()
	before2 := len(cols[1].list())
	const k = 5
	for i := 0; i < k; i++ {
		if err := mob.Send([]byte(fmt.Sprintf("after-failover-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, 10*time.Second, "survivor delivers post-failover casts", func() bool {
		return len(cols[1].list()) >= before2+k
	})
	if tx := mob.VNode().Counters().Tx[ClassData].Msgs; tx != k {
		t.Fatalf("mobile transmitted %d data messages for %d casts after failover", tx, k)
	}
}

func TestNodeAccessors(t *testing.T) {
	w := hybridWorld(t, 8)
	n, err := Start(Config{World: w, ID: 1, Kind: Fixed, Members: []NodeID{1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	if n.ID() != 1 {
		t.Fatal("ID")
	}
	if n.VNode() == nil || n.Context() == nil || n.Manager() == nil {
		t.Fatal("accessors returned nil")
	}
	if n.Epoch() != 1 {
		t.Fatalf("initial epoch = %d", n.Epoch())
	}
	if err := n.Send([]byte("self")); err != nil {
		t.Fatal(err)
	}
}

// Silence unused-import guard for appia in future edits.
var _ = appia.NoNode
