package morpheus_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"morpheus"
	"morpheus/internal/netio"
	"morpheus/internal/netio/loopnet"
	"morpheus/internal/netio/udpnet"
	"morpheus/internal/vnet"
)

// deliveries gathers delivered payloads thread-safely, keyed by payload.
type deliveries struct {
	mu  sync.Mutex
	seq []string
	got map[string]int
}

func newDeliveries() *deliveries { return &deliveries{got: make(map[string]int)} }

func (d *deliveries) add(from morpheus.NodeID, payload []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq = append(d.seq, string(payload))
	d.got[string(payload)]++
}

func (d *deliveries) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.seq)
}

func (d *deliveries) countPrefix(prefix string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, s := range d.seq {
		if strings.HasPrefix(s, prefix) {
			n++
		}
	}
	return n
}

func (d *deliveries) dups() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for p, n := range d.got {
		if n > 1 {
			out = append(out, fmt.Sprintf("%s x%d", p, n))
		}
	}
	return out
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

// joinViaScenario drives the tentpole end to end on an arbitrary substrate:
// a trio bootstraps the default group and exchanges pre-join traffic, then a
// fourth node that took no part in the bootstrap enters the *running* group
// through one seed member. The joiner must start gap-free at the
// state-transfer frontier: it delivers every post-join cast, none of the
// pre-join history, and its own casts reach everyone.
func joinViaScenario(t *testing.T, attach func(id morpheus.NodeID) morpheus.Endpoint) {
	t.Helper()
	trio := []morpheus.NodeID{1, 2, 3}
	const late = morpheus.NodeID(9)

	cols := make(map[morpheus.NodeID]*deliveries)
	nodes := make(map[morpheus.NodeID]*morpheus.Node)
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	for _, id := range trio {
		id := id
		col := newDeliveries()
		cols[id] = col
		nd, err := morpheus.Start(morpheus.Config{
			Endpoint:  attach(id),
			Members:   trio,
			Heartbeat: 30 * time.Millisecond,
			OnMessage: col.add,
		})
		if err != nil {
			t.Fatalf("start %d: %v", id, err)
		}
		nodes[id] = nd
	}

	// Pre-join history: must never reach the late joiner.
	const pre = 4
	for _, id := range trio {
		for i := 0; i < pre; i++ {
			if err := nodes[id].Send([]byte(fmt.Sprintf("pre:%d:%d", id, i))); err != nil {
				t.Fatalf("pre-join send from %d: %v", id, err)
			}
		}
	}
	for _, id := range trio {
		id := id
		waitFor(t, 10*time.Second, fmt.Sprintf("node %d delivers pre-join traffic", id), func() bool {
			return cols[id].count() >= len(trio)*pre
		})
	}

	// The late joiner bootstraps only the control plane (a singleton), then
	// enters the running data group through seed 1.
	lateCol := newDeliveries()
	cols[late] = lateCol
	joiner, err := morpheus.Start(morpheus.Config{
		Endpoint:       attach(late),
		Members:        []morpheus.NodeID{late},
		NoDefaultGroup: true,
		Heartbeat:      30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("start late joiner: %v", err)
	}
	nodes[late] = joiner
	if joiner.Group(morpheus.DefaultGroup) != nil {
		t.Fatal("NoDefaultGroup node hosts a default group")
	}
	g, err := joiner.JoinVia(morpheus.DefaultGroup, 1, morpheus.GroupConfig{
		OnMessage: lateCol.add,
	})
	if err != nil {
		t.Fatalf("JoinVia: %v", err)
	}
	if joiner.Group(morpheus.DefaultGroup) != g {
		t.Fatal("joined group not installed under its name")
	}

	// Post-join traffic from every survivor and from the joiner itself.
	const post = 4
	for _, id := range trio {
		for i := 0; i < post; i++ {
			if err := nodes[id].Send([]byte(fmt.Sprintf("post:%d:%d", id, i))); err != nil {
				t.Fatalf("post-join send from %d: %v", id, err)
			}
		}
	}
	for i := 0; i < post; i++ {
		if err := g.Send([]byte(fmt.Sprintf("post:%d:%d", late, i))); err != nil {
			t.Fatalf("send from joiner: %v", err)
		}
	}
	wantPost := (len(trio) + 1) * post
	for id, col := range cols {
		id, col := id, col
		waitFor(t, 15*time.Second, fmt.Sprintf("node %d delivers post-join traffic", id), func() bool {
			return col.countPrefix("post:") >= wantPost
		})
	}

	// Frontier semantics: the joiner saw none of the history and nobody saw
	// anything twice.
	if n := lateCol.countPrefix("pre:"); n != 0 {
		t.Fatalf("late joiner replayed %d pre-join casts", n)
	}
	for id, col := range cols {
		if dups := col.dups(); len(dups) > 0 {
			t.Fatalf("node %d duplicate deliveries: %v", id, dups)
		}
	}
}

// TestJoinViaRunningGroupVnet is the tentpole scenario on the simulated
// substrate.
func TestJoinViaRunningGroupVnet(t *testing.T) {
	w := vnet.NewWorld(41)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})
	joinViaScenario(t, func(id morpheus.NodeID) morpheus.Endpoint {
		ep, err := w.AddNode(id, vnet.Fixed, "lan")
		if err != nil {
			t.Fatalf("add node %d: %v", id, err)
		}
		return ep
	})
}

// TestJoinViaRunningGroupLoopnet runs the same conformance scenario over the
// in-process channel-based substrate.
func TestJoinViaRunningGroupLoopnet(t *testing.T) {
	nw := loopnet.New()
	t.Cleanup(func() { _ = nw.Close() })
	joinViaScenario(t, func(id morpheus.NodeID) morpheus.Endpoint {
		ep, err := nw.Attach(netio.EndpointConfig{ID: id, Kind: netio.Fixed, Segments: []string{"lan"}})
		if err != nil {
			t.Fatalf("attach %d: %v", id, err)
		}
		return ep
	})
}

// TestJoinViaRunningGroupUDP runs the same conformance scenario over real
// UDP sockets (the in-process twin of the examples/live late-join round).
func TestJoinViaRunningGroupUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("udpnet socket tests skipped in -short mode")
	}
	peers := map[netio.NodeID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0", 3: "127.0.0.1:0", 9: "127.0.0.1:0"}
	nw, err := udpnet.New(udpnet.Config{Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nw.Close() })
	joinViaScenario(t, func(id morpheus.NodeID) morpheus.Endpoint {
		ep, err := nw.Attach(netio.EndpointConfig{ID: id, Kind: netio.Fixed, Segments: []string{"lan"}})
		if err != nil {
			t.Fatalf("attach %d: %v", id, err)
		}
		return ep
	})
}

// TestLeaveReleasesSendWindow pins the survivor-side wedge this PR fixes, on
// the virtual clock. Three members run windowed senders; one member leaves
// gracefully while the others keep saturating their send windows. Because
// the leave is announced through the control plane, the survivors install a
// view excluding the leaver within one stability round — releasing every
// held cast, window credit and byte-window budget. Before the fix the
// departed member's missing acknowledgements pinned the survivors' credits
// forever (data channels run no failure detector, and the leaver stays
// control-live, so nothing ever evicted it).
func TestLeaveReleasesSendWindow(t *testing.T) {
	clk := morpheus.NewVirtualClock()
	defer clk.Stop()
	w := morpheus.NewWorldWithClock(43, clk)
	defer w.Close()
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})

	members := []morpheus.NodeID{1, 2, 3}
	nodes := make(map[morpheus.NodeID]*morpheus.Node)
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	cols := make(map[morpheus.NodeID]*deliveries)
	for _, id := range members {
		col := newDeliveries()
		cols[id] = col
		nd, err := morpheus.Start(morpheus.Config{
			World: w, ID: id, Kind: morpheus.Fixed, Segments: []string{"lan"},
			Members:         members,
			SendWindow:      4,
			SendWindowBytes: 1 << 10,
			OnMessage:       col.add,
		})
		if err != nil {
			t.Fatalf("start %d: %v", id, err)
		}
		nodes[id] = nd
	}

	// Warm up: one cast from each member delivered everywhere, so the group
	// is demonstrably live before the departure.
	for _, id := range members {
		if err := nodes[id].Send([]byte(fmt.Sprintf("warm:%d", id))); err != nil {
			t.Fatalf("warmup send from %d: %v", id, err)
		}
	}
	warmDeadline := clk.Now().Add(10 * time.Second)
	warm := func() bool {
		for _, id := range members {
			if cols[id].count() < len(members) {
				return false
			}
		}
		return true
	}
	for !warm() {
		if clk.Now().After(warmDeadline) {
			t.Fatalf("warmup never delivered")
		}
		clk.Sleep(5 * time.Millisecond)
	}

	// Node 3 leaves gracefully, then the survivors saturate their windows.
	// Every cast sent from here on needs stability — which the departed
	// member can no longer contribute to.
	leftAt := clk.Now()
	if err := nodes[3].Group(morpheus.DefaultGroup).Leave(); err != nil {
		t.Fatalf("leave: %v", err)
	}
	const burst = 24 // 6x the window: forces credit recycling to finish
	dones := make([]chan struct{}, 0, 2)
	for _, id := range []morpheus.NodeID{1, 2} {
		id := id
		done := make(chan struct{})
		dones = append(dones, done)
		clk.Go(func() {
			defer close(done)
			for i := 0; i < burst; i++ {
				if err := nodes[id].Send([]byte(fmt.Sprintf("burst:%d:%d", id, i))); err != nil {
					t.Errorf("burst send from %d: %v", id, err)
					return
				}
			}
		})
	}
	for _, d := range dones {
		clk.Wait(d)
	}

	// Both survivors' windows must drain completely: InUse down to zero for
	// both message and byte credits, nothing buffered. A wedged window never
	// recovers, so a generous virtual deadline keeps the test sharp without
	// being timing-brittle.
	drainDeadline := clk.Now().Add(30 * time.Second)
	drained := func() bool {
		for _, id := range []morpheus.NodeID{1, 2} {
			fs := nodes[id].Group(morpheus.DefaultGroup).FlowStats()
			if fs.Window.InUse != 0 || fs.WindowBytes.InUse != 0 || fs.BufferedSends != 0 {
				return false
			}
		}
		return true
	}
	for !drained() {
		if clk.Now().After(drainDeadline) {
			var state []string
			for _, id := range []morpheus.NodeID{1, 2} {
				fs := nodes[id].Group(morpheus.DefaultGroup).FlowStats()
				state = append(state, fmt.Sprintf("node %d: win=%d/%d bytes=%d buffered=%d",
					id, fs.Window.InUse, fs.Window.Capacity, fs.WindowBytes.InUse, fs.BufferedSends))
			}
			t.Fatalf("send windows never drained after graceful leave:\n%s", strings.Join(state, "\n"))
		}
		clk.Sleep(10 * time.Millisecond)
	}
	drainedAt := clk.Now()

	// The departure must have been absorbed promptly — the whole burst,
	// window recycling included, completes within a handful of stability
	// rounds (250ms each) of the leave, not on some multi-second eviction.
	if took := drainedAt.Sub(leftAt); took > 10*time.Second {
		t.Fatalf("windows drained only %v after the leave", took)
	}

	// Survivors delivered each other's full burst exactly once.
	for _, id := range []morpheus.NodeID{1, 2} {
		if got := cols[id].countPrefix("burst:"); got != 2*burst {
			t.Fatalf("survivor %d delivered %d burst casts, want %d", id, got, 2*burst)
		}
		if dups := cols[id].dups(); len(dups) > 0 {
			t.Fatalf("survivor %d duplicate deliveries: %v", id, dups)
		}
	}
}

// TestRejoinAfterLeave pins the Join→Leave→JoinVia round trip on one node:
// a member that left a running group must come back through the join
// protocol (state transfer at the survivors' frontier), not by
// re-bootstrapping an epoch-1 singleton that would collide with the
// survivors' advanced sequence spaces.
func TestRejoinAfterLeave(t *testing.T) {
	w := vnet.NewWorld(47)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})
	members := []morpheus.NodeID{1, 2, 3}
	cols := make(map[morpheus.NodeID]*deliveries)
	nodes := make(map[morpheus.NodeID]*morpheus.Node)
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	for _, id := range members {
		id := id
		col := newDeliveries()
		cols[id] = col
		nd, err := morpheus.Start(morpheus.Config{
			World: w, ID: id, Kind: morpheus.Fixed, Segments: []string{"lan"},
			Members:   members,
			Heartbeat: 30 * time.Millisecond,
			OnMessage: col.add,
		})
		if err != nil {
			t.Fatalf("start %d: %v", id, err)
		}
		nodes[id] = nd
	}

	// Phase 1: everyone casts; sequence spaces advance well past 1.
	const phase1 = 5
	for _, id := range members {
		for i := 0; i < phase1; i++ {
			if err := nodes[id].Send([]byte(fmt.Sprintf("p1:%d:%d", id, i))); err != nil {
				t.Fatalf("phase-1 send from %d: %v", id, err)
			}
		}
	}
	for _, id := range members {
		id := id
		waitFor(t, 10*time.Second, fmt.Sprintf("node %d delivers phase 1", id), func() bool {
			return cols[id].countPrefix("p1:") >= len(members)*phase1
		})
	}

	// Phase 2: node 3 leaves; survivors keep casting without it.
	if err := nodes[3].Group(morpheus.DefaultGroup).Leave(); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if g := nodes[3].Group(morpheus.DefaultGroup); g != nil {
		t.Fatal("left group still installed")
	}
	const phase2 = 5
	for _, id := range []morpheus.NodeID{1, 2} {
		for i := 0; i < phase2; i++ {
			if err := nodes[id].Send([]byte(fmt.Sprintf("p2:%d:%d", id, i))); err != nil {
				t.Fatalf("phase-2 send from %d: %v", id, err)
			}
		}
	}
	for _, id := range []morpheus.NodeID{1, 2} {
		id := id
		waitFor(t, 10*time.Second, fmt.Sprintf("survivor %d delivers phase 2", id), func() bool {
			return cols[id].countPrefix("p2:") >= 2*phase2
		})
	}

	// Phase 3: node 3 rejoins the same name through a seed. It must enter at
	// the survivors' frontier: no phase-1/phase-2 replay, full delivery of
	// everything cast after admission, its own casts delivered everywhere.
	rejoinCol := newDeliveries()
	g3, err := nodes[3].JoinVia(morpheus.DefaultGroup, 1, morpheus.GroupConfig{
		OnMessage: rejoinCol.add,
	})
	if err != nil {
		t.Fatalf("rejoin via seed: %v", err)
	}
	const phase3 = 5
	for _, id := range []morpheus.NodeID{1, 2} {
		for i := 0; i < phase3; i++ {
			if err := nodes[id].Send([]byte(fmt.Sprintf("p3:%d:%d", id, i))); err != nil {
				t.Fatalf("phase-3 send from %d: %v", id, err)
			}
		}
	}
	for i := 0; i < phase3; i++ {
		if err := g3.Send([]byte(fmt.Sprintf("p3:3:%d", i))); err != nil {
			t.Fatalf("phase-3 send from rejoined node: %v", err)
		}
	}
	wantP3 := 3 * phase3
	waitFor(t, 15*time.Second, "rejoined node delivers phase 3", func() bool {
		return rejoinCol.countPrefix("p3:") >= wantP3
	})
	for _, id := range []morpheus.NodeID{1, 2} {
		id := id
		waitFor(t, 15*time.Second, fmt.Sprintf("survivor %d delivers phase 3", id), func() bool {
			return cols[id].countPrefix("p3:") >= wantP3
		})
	}
	if n := rejoinCol.countPrefix("p1:") + rejoinCol.countPrefix("p2:"); n != 0 {
		t.Fatalf("rejoined node replayed %d historical casts", n)
	}
	for id, col := range cols {
		if dups := col.dups(); len(dups) > 0 {
			t.Fatalf("node %d duplicate deliveries: %v", id, dups)
		}
	}
	if dups := rejoinCol.dups(); len(dups) > 0 {
		t.Fatalf("rejoined node duplicate deliveries: %v", dups)
	}
}
