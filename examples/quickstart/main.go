// Quickstart: three nodes on a simulated LAN exchange multicasts through
// the Morpheus group stack. This is the smallest complete use of the
// public API: build a world, start nodes, send, receive — plus the
// multi-group runtime: each node joins a second group ("telemetry") over
// the same endpoint and control plane, with traffic fully isolated from
// the default chat group.
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"morpheus"
	"morpheus/internal/vnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A deterministic virtual network with one wired segment.
	w := morpheus.NewWorld(42)
	defer w.Close()
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})

	members := []morpheus.NodeID{1, 2, 3}

	var mu sync.Mutex
	received := make(map[morpheus.NodeID][]string)
	telemetry := make(map[morpheus.NodeID][]string)

	var nodes []*morpheus.Node
	for _, id := range members {
		id := id
		n, err := morpheus.Start(morpheus.Config{
			World:   w,
			ID:      id,
			Kind:    morpheus.Fixed,
			Members: members,
			OnMessage: func(from morpheus.NodeID, payload []byte) {
				mu.Lock()
				defer mu.Unlock()
				received[id] = append(received[id], fmt.Sprintf("%q from node %d", payload, from))
			},
		})
		if err != nil {
			return err
		}
		defer func() { _ = n.Close() }()

		// A node hosts any number of groups over one endpoint: the
		// telemetry group has its own stack, membership and epochs.
		if _, err := n.Join("telemetry", morpheus.GroupConfig{
			Members: members,
			OnMessage: func(from morpheus.NodeID, payload []byte) {
				mu.Lock()
				defer mu.Unlock()
				telemetry[id] = append(telemetry[id], fmt.Sprintf("%q from node %d", payload, from))
			},
		}); err != nil {
			return err
		}
		nodes = append(nodes, n)
	}

	// Every member multicasts one chat line into the default group and one
	// reading into the telemetry group; the reliable layer delivers each to
	// everyone (including the sender) exactly once, FIFO per sender — and
	// never across groups.
	for i, n := range nodes {
		if err := n.Send([]byte(fmt.Sprintf("hello from node %d", i+1))); err != nil {
			return err
		}
		if err := n.Group("telemetry").Send([]byte(fmt.Sprintf("cpu=%d%%", 10*(i+1)))); err != nil {
			return err
		}
	}

	// Wait until everyone has all three messages in both groups.
	deadline := time.Now().Add(10 * time.Second) //lint:wallclock-ok demo waits in real time for delivery
	for time.Now().Before(deadline) {            //lint:wallclock-ok demo waits in real time for delivery
		mu.Lock()
		done := true
		for _, id := range members {
			if len(received[id]) != 3 || len(telemetry[id]) != 3 {
				done = false
			}
		}
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond) //lint:wallclock-ok real-time polling backoff
	}

	mu.Lock()
	defer mu.Unlock()
	for _, id := range members {
		fmt.Printf("node %d received (chat):\n", id)
		for _, line := range received[id] {
			fmt.Printf("  %s\n", line)
		}
		fmt.Printf("node %d received (telemetry):\n", id)
		for _, line := range telemetry[id] {
			fmt.Printf("  %s\n", line)
		}
	}
	return nil
}
