// Quickstart: three nodes on a simulated LAN exchange multicasts through
// the Morpheus group stack. This is the smallest complete use of the
// public API: build a world, start nodes, send, receive.
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"morpheus"
	"morpheus/internal/vnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A deterministic virtual network with one wired segment.
	w := morpheus.NewWorld(42)
	defer w.Close()
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})

	members := []morpheus.NodeID{1, 2, 3}

	var mu sync.Mutex
	received := make(map[morpheus.NodeID][]string)

	var nodes []*morpheus.Node
	for _, id := range members {
		id := id
		n, err := morpheus.Start(morpheus.Config{
			World:   w,
			ID:      id,
			Kind:    morpheus.Fixed,
			Members: members,
			OnMessage: func(from morpheus.NodeID, payload []byte) {
				mu.Lock()
				defer mu.Unlock()
				received[id] = append(received[id], fmt.Sprintf("%q from node %d", payload, from))
			},
		})
		if err != nil {
			return err
		}
		defer func() { _ = n.Close() }()
		nodes = append(nodes, n)
	}

	// Every member multicasts one line; the reliable layer delivers each
	// line to everyone (including the sender) exactly once, FIFO per
	// sender.
	for i, n := range nodes {
		if err := n.Send([]byte(fmt.Sprintf("hello from node %d", i+1))); err != nil {
			return err
		}
	}

	// Wait until everyone has all three messages.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := len(received[1]) == 3 && len(received[2]) == 3 && len(received[3]) == 3
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	for _, id := range members {
		fmt.Printf("node %d received:\n", id)
		for _, line := range received[id] {
			fmt.Printf("  %s\n", line)
		}
	}
	return nil
}
