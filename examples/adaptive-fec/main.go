// Adaptive-FEC: the §2 motivation, live. A group runs the retransmission
// (ARQ) stack; when the measured link error rate spikes, the Core policy
// reconfigures everyone to the Reed–Solomon FEC stack, and when the link
// recovers it switches back. The loss "measurement" is a context retriever
// standing in for NIC error counters.
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"morpheus"
	"morpheus/internal/cocaditem"
	"morpheus/internal/core"
	"morpheus/internal/vnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptive-fec:", err)
		os.Exit(1)
	}
}

func run() error {
	w := morpheus.NewWorld(21)
	defer w.Close()
	w.AddSegment(vnet.SegmentConfig{Name: "lan"})

	// The observed loss rate, as a NIC driver would report it.
	var mu sync.Mutex
	observedLoss := 0.005
	setLoss := func(v float64) {
		mu.Lock()
		observedLoss = v
		mu.Unlock()
		// Also inject the real loss into the network so the change is
		// not just cosmetic.
		if err := w.SetSegmentLoss("lan", v); err != nil {
			panic(err)
		}
	}
	lossRetriever := cocaditem.FuncRetriever{
		TopicName: cocaditem.TopicLinkLoss,
		Fn: func() (float64, string) {
			mu.Lock()
			defer mu.Unlock()
			return observedLoss, ""
		},
	}

	members := []morpheus.NodeID{1, 2, 3}
	var nodes []*morpheus.Node
	var delivered sync.Map
	for _, id := range members {
		id := id
		n, err := morpheus.Start(morpheus.Config{
			World: w, ID: id, Kind: morpheus.Fixed, Members: members,
			InitialConfig:     core.ArqConfig(),
			InitialConfigName: core.ArqConfigName,
			Policies:          []morpheus.Policy{core.ErrorRecoveryPolicy{}},
			Retrievers:        []cocaditem.Retriever{lossRetriever},
			ContextInterval:   40 * time.Millisecond,
			EvalInterval:      60 * time.Millisecond,
			OnMessage: func(from morpheus.NodeID, payload []byte) {
				v, _ := delivered.LoadOrStore(id, new(int))
				mu.Lock()
				*(v.(*int))++
				mu.Unlock()
			},
		})
		if err != nil {
			return err
		}
		defer func() { _ = n.Close() }()
		nodes = append(nodes, n)
	}

	report := func(phase string) {
		fmt.Printf("%-28s stack=%q\n", phase, nodes[0].ConfigName())
	}
	report("start (low loss):")

	// Loss spikes: the policy must mask instead of retransmit.
	setLoss(0.15)
	if err := waitConfig(nodes, core.FecConfigName); err != nil {
		return err
	}
	report("after loss spike to 15%:")
	for i := 0; i < 20; i++ {
		if err := nodes[0].Send([]byte(fmt.Sprintf("payload-under-loss-%d", i))); err != nil {
			return err
		}
	}
	time.Sleep(300 * time.Millisecond) //lint:wallclock-ok demo paces real traffic on the wall clock

	// Link recovers: back to detect-and-retransmit.
	setLoss(0.002)
	if err := waitConfig(nodes, core.ArqConfigName); err != nil {
		return err
	}
	report("after link recovery:")
	fmt.Println("the stack followed the error rate: arq -> fec -> arq, with no application involvement")
	return nil
}

func waitConfig(nodes []*morpheus.Node, want string) error {
	deadline := time.Now().Add(30 * time.Second) //lint:wallclock-ok demo waits in real time for convergence
	for time.Now().Before(deadline) {            //lint:wallclock-ok demo waits in real time for convergence
		done := true
		for _, n := range nodes {
			if n.ConfigName() != want {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		time.Sleep(10 * time.Millisecond) //lint:wallclock-ok real-time polling backoff
	}
	return fmt.Errorf("group never converged on %q", want)
}
