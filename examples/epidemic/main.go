// Epidemic: the §1 motivation for large, geographically spread groups.
// Thirty-two nodes disseminate messages by gossip instead of sender
// fan-out; the per-node transmission load stays at O(fanout) while the
// fan-out baseline burdens the sender with O(n). The reliable layer on top
// repairs the probabilistic tail, so delivery is still complete.
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"morpheus"
	"morpheus/internal/core"
	"morpheus/internal/vnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "epidemic:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 32
	const messages = 30

	w := morpheus.NewWorld(55)
	defer w.Close()
	w.AddSegment(vnet.SegmentConfig{Name: "lan"})

	members := make([]morpheus.NodeID, n)
	for i := range members {
		members[i] = morpheus.NodeID(i + 1)
	}

	var mu sync.Mutex
	deliveredBy := make(map[morpheus.NodeID]int, n)

	var nodes []*morpheus.Node
	for _, id := range members {
		id := id
		node, err := morpheus.Start(morpheus.Config{
			World: w, ID: id, Kind: morpheus.Fixed, Members: members,
			InitialConfig:     core.EpidemicConfig(3, 5),
			InitialConfigName: core.EpidemicConfigName,
			OnMessage: func(from morpheus.NodeID, payload []byte) {
				mu.Lock()
				deliveredBy[id]++
				mu.Unlock()
			},
		})
		if err != nil {
			return err
		}
		defer func() { _ = node.Close() }()
		nodes = append(nodes, node)
	}

	for i := 0; i < messages; i++ {
		if err := nodes[0].Send([]byte(fmt.Sprintf("gossip %d", i))); err != nil {
			return err
		}
	}

	deadline := time.Now().Add(30 * time.Second) //lint:wallclock-ok demo waits in real time for gossip convergence
	for time.Now().Before(deadline) {            //lint:wallclock-ok demo waits in real time for gossip convergence
		mu.Lock()
		done := true
		for _, id := range members {
			if deliveredBy[id] < messages {
				done = false
				break
			}
		}
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(10 * time.Millisecond) //lint:wallclock-ok real-time polling backoff
	}

	// Compare data-class traffic only: the stability gossip and heartbeats
	// are control overhead common to both strategies.
	senderTx := nodes[0].VNode().Counters().Tx["data"].Msgs
	var maxTx, totalTx uint64
	for _, node := range nodes {
		tx := node.VNode().Counters().Tx["data"].Msgs
		totalTx += tx
		if tx > maxTx {
			maxTx = tx
		}
	}
	mu.Lock()
	minDelivered := messages
	for _, id := range members {
		if deliveredBy[id] < minDelivered {
			minDelivered = deliveredBy[id]
		}
	}
	mu.Unlock()

	fmt.Printf("group of %d nodes, %d multicasts via gossip (fanout 3, ttl 5) + reliable repair\n", n, messages)
	fmt.Printf("  every node delivered:   %d/%d\n", minDelivered, messages)
	fmt.Printf("  sender transmissions:   %d   (plain fan-out would need %d for data alone)\n", senderTx, messages*(n-1))
	fmt.Printf("  busiest node:           %d transmissions\n", maxTx)
	fmt.Printf("  network total:          %d transmissions\n", totalTx)
	return nil
}
