// Chat: the paper's §4 validation scenario as a library example. Two fixed
// PCs and one PDA chat in a room; the Morpheus coordinator detects the
// hybrid context through Cocaditem and reconfigures the stack to Mecho, and
// the message counters show the load shifting off the mobile device.
package main

import (
	"fmt"
	"os"
	"time"

	"morpheus"
	"morpheus/internal/appia"
	"morpheus/internal/chat"
	"morpheus/internal/core"
	"morpheus/internal/vnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chat example:", err)
		os.Exit(1)
	}
}

func run() error {
	w := morpheus.NewWorld(7)
	defer w.Close()
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})
	w.AddSegment(vnet.SegmentConfig{Name: "wlan", Wireless: true})

	members := []morpheus.NodeID{1, 2, 100}
	kinds := map[morpheus.NodeID]morpheus.Kind{1: morpheus.Fixed, 2: morpheus.Fixed, 100: morpheus.Mobile}
	names := map[morpheus.NodeID]string{1: "ana", 2: "bruno", 100: "carla(pda)"}

	adapted := make(chan string, 1)
	clients := make(map[morpheus.NodeID]*chat.Client)
	nodes := make(map[morpheus.NodeID]*morpheus.Node)
	for _, id := range members {
		kind := kinds[id]
		seg := "lan"
		if kind == morpheus.Mobile {
			seg = "wlan"
		}
		client := chat.NewClient(names[id], "interest-group-1", id)
		client.OnMessage(func(m chat.Message) {
			fmt.Printf("  <%s> %s\n", m.From, m.Text)
		})
		n, err := morpheus.Start(morpheus.Config{
			World: w, ID: id, Kind: kind, Segments: []string{seg},
			Members:         members,
			Policies:        []morpheus.Policy{core.HybridMechoPolicy{}},
			ContextInterval: 40 * time.Millisecond,
			EvalInterval:    60 * time.Millisecond,
			PublishOnChange: true,
			OnMessage:       client.Receive,
			OnReconfigured: func(epoch uint64, cfg string, took time.Duration) {
				select {
				case adapted <- cfg:
				default:
				}
			},
		})
		if err != nil {
			return err
		}
		defer func() { _ = n.Close() }()
		client.Bind(n)
		clients[id] = client
		nodes[id] = n
	}

	fmt.Println("-- before adaptation (plain fan-out stack):")
	if err := clients[100].Say("hi everyone, typing from the PDA"); err != nil {
		return err
	}
	waitDelivered(clients, 1)

	select {
	case cfg := <-adapted:
		fmt.Printf("-- Morpheus adapted the stack to %q (hybrid group detected)\n", cfg)
	case <-time.After(20 * time.Second): //lint:wallclock-ok wall timeout for a live adaptation
		return fmt.Errorf("adaptation never happened")
	}

	// Reset counters so the post-adaptation economics are visible.
	for _, n := range nodes {
		n.VNode().ResetCounters()
	}
	fmt.Println("-- after adaptation (Mecho: PDA sends once, the relay echoes):")
	for i := 0; i < 5; i++ {
		if err := clients[100].Say(fmt.Sprintf("mecho message %d", i)); err != nil {
			return err
		}
	}
	if err := clients[1].Say("got you loud and clear"); err != nil {
		return err
	}
	waitDelivered(clients, 7)

	fmt.Println("-- transmission counters for the 5 PDA messages + 1 PC message:")
	for _, id := range members {
		c := nodes[id].VNode().Counters()
		fmt.Printf("   %-10s data-tx=%-3d control-tx=%d\n",
			names[id], c.Tx[appia.ClassData].Msgs, c.Tx[appia.ClassControl].Msgs)
	}
	fmt.Println("   (the PDA transmitted one message per chat line; the relay fanned out)")
	return nil
}

func waitDelivered(clients map[morpheus.NodeID]*chat.Client, want int) {
	deadline := time.Now().Add(15 * time.Second) //lint:wallclock-ok demo waits in real time for delivery
	for time.Now().Before(deadline) {            //lint:wallclock-ok demo waits in real time for delivery
		done := true
		for _, c := range clients {
			if c.Delivered() < want {
				done = false
				break
			}
		}
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond) //lint:wallclock-ok real-time polling backoff
	}
}
