// Example live is the real-network version of the paper's testbed: three
// OS processes — two "fixed PCs" and one "PDA" — form a Morpheus group
// over UDP sockets on localhost, exchange reliable multicasts, and survive
// a live reconfiguration: the hybrid-Mecho policy notices the mobile
// member through disseminated context and redeploys everyone from the
// plain fan-out stack to Mecho (relay = node 1) while traffic flows.
//
// Run it with no arguments; it re-executes itself once per participant
// (the -child flag) and scans their output:
//
//	go run ./examples/live
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"morpheus/internal/core"
	"morpheus/internal/liverun"
	"morpheus/internal/netio"
)

// Participants: two fixed, one mobile (the paper gives the PDA the highest
// identifier so a fixed node coordinates).
var memberIDs = []netio.NodeID{1, 2, 100}

const (
	sendPerNode = 15
	relay       = netio.NodeID(1)
	// extraGroup is the second group every process joins (the multi-group
	// runtime over one UDP endpoint).
	extraGroup = "telemetry"
)

func main() {
	child := flag.Int("child", 0, "internal: run as participant with this id")
	peers := flag.String("peers", "", "internal: peer directory for child mode")
	flag.Parse()
	if *child != 0 {
		runChild(netio.NodeID(*child), *peers)
		return
	}
	if err := runParent(); err != nil {
		fmt.Fprintln(os.Stderr, "live:", err)
		os.Exit(1)
	}
}

// runChild is one participant process.
func runChild(id netio.NodeID, peerStr string) {
	peerMap, err := liverun.ParsePeers(peerStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kind := netio.Fixed
	if id == 100 {
		kind = netio.Mobile
	}
	err = liverun.Run(liverun.Options{
		ID:      id,
		Kind:    kind,
		Peers:   peerMap,
		Members: memberIDs,
		Adapt:   true,
		// The multi-group runtime: every process also hosts a telemetry
		// group over the same UDP endpoint and control plane; the workload
		// runs in both groups, fully isolated from each other.
		JoinGroups:   []string{extraGroup},
		SendCount:    sendPerNode,
		SendInterval: 25 * time.Millisecond,
		// Each node hears everyone else's casts — in every group.
		ExpectRecv:   sendPerNode * (len(memberIDs) - 1),
		ExpectConfig: core.MechoConfigName(relay),
		Timeout:      90 * time.Second,
	}, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child", id, "failed:", err)
		os.Exit(1)
	}
}

// runParent spawns the three participants and summarises their runs.
func runParent() error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	peers, err := allocatePeers()
	if err != nil {
		return err
	}
	fmt.Println("live: three Morpheus processes over UDP on localhost")
	for id, addr := range peers {
		fmt.Printf("live:   node %d -> %s\n", id, addr)
	}
	peerStr := formatPeers(peers)

	type result struct {
		id  netio.NodeID
		err error
	}
	var (
		mu           sync.Mutex
		reconfigured = map[netio.NodeID]bool{}
		delivered    = map[netio.NodeID]int{}
		telemetry    = map[netio.NodeID]int{}
	)
	results := make(chan result, len(memberIDs))
	for _, id := range memberIDs {
		id := id
		cmd := exec.Command(self, "-child", fmt.Sprint(id), "-peers", peerStr)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawn node %d: %w", id, err)
		}
		go func() {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				line := sc.Text()
				fmt.Printf("  [node %3d] %s\n", id, line)
				mu.Lock()
				if strings.HasPrefix(line, "recv ") && !strings.Contains(line, fmt.Sprintf("from=%d ", id)) {
					if strings.Contains(line, "group="+extraGroup+" ") {
						telemetry[id]++
					} else {
						delivered[id]++
					}
				}
				if strings.HasPrefix(line, "config ") && strings.Contains(line, "name=mecho") {
					reconfigured[id] = true
				}
				mu.Unlock()
			}
			results <- result{id, cmd.Wait()}
		}()
	}

	failed := false
	for range memberIDs {
		r := <-results
		if r.err != nil {
			fmt.Printf("live: node %d FAILED: %v\n", r.id, r.err)
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("a participant failed")
	}
	want := sendPerNode * (len(memberIDs) - 1)
	fmt.Println("live: summary")
	for _, id := range memberIDs {
		fmt.Printf("live:   node %3d delivered %d/%d chat + %d/%d telemetry, reconfigured to mecho: %v\n",
			id, delivered[id], want, telemetry[id], want, reconfigured[id])
	}
	fmt.Println("live: ok — reliable multicast in two concurrent groups and a live plain->mecho reconfiguration across 3 processes")
	return nil
}

// allocatePeers reserves one localhost UDP port per member. The ports are
// released before the children bind them; a steal in that window would
// fail the run loudly, which for a demo is acceptable.
func allocatePeers() (map[netio.NodeID]string, error) {
	peers := make(map[netio.NodeID]string, len(memberIDs))
	for _, id := range memberIDs {
		c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return nil, err
		}
		peers[id] = c.LocalAddr().String()
		c.Close()
	}
	return peers, nil
}

// formatPeers renders the directory in -peers syntax.
func formatPeers(peers map[netio.NodeID]string) string {
	parts := make([]string, 0, len(peers))
	for _, id := range memberIDs {
		parts = append(parts, fmt.Sprintf("%d=%s", id, peers[id]))
	}
	return strings.Join(parts, ",")
}
