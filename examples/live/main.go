// Example live is the real-network version of the paper's testbed: three
// OS processes — two "fixed PCs" and one "PDA" — form a Morpheus group
// over UDP sockets on localhost, exchange reliable multicasts, and survive
// a live reconfiguration: the hybrid-Mecho policy notices the mobile
// member through disseminated context and redeploys everyone from the
// plain fan-out stack to Mecho (relay = node 1) while traffic flows.
//
// The demo then exercises the full membership lifecycle:
//
//   - a fourth OS process starts late and enters the *running* group
//     through seed member 1 (-join-via): it receives the adapted Mecho
//     configuration by state transfer and starts gap-free at the current
//     delivery frontier, with no history replay;
//   - its casts are delivered by every original member;
//   - one original member is then killed with SIGTERM mid-run: it leaves
//     gracefully (announcing its departure through the control plane),
//     and every survivor installs a view without it within seconds —
//     well under the failure detector's eviction threshold.
//
// Run it with no arguments; it re-executes itself once per participant
// (the -child flag) and scans their output:
//
//	go run ./examples/live
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"

	"morpheus/internal/core"
	"morpheus/internal/liverun"
	"morpheus/internal/netio"
)

// Participants: two fixed, one mobile (the paper gives the PDA the highest
// identifier so a fixed node coordinates), plus one late joiner that takes
// no part in the bootstrap.
var memberIDs = []netio.NodeID{1, 2, 100}

const (
	sendPerNode = 15
	relay       = netio.NodeID(1)
	// extraGroup is the second group every bootstrap process joins (the
	// multi-group runtime over one UDP endpoint).
	extraGroup = "telemetry"
	// lateJoiner enters the running chat group through joinSeed once the
	// trio has adapted to Mecho.
	lateJoiner  = netio.NodeID(7)
	joinSeed    = netio.NodeID(1)
	joinerSends = 5
	// victim is the member killed mid-run to demonstrate graceful leave.
	victim = netio.NodeID(2)
)

func main() {
	child := flag.Int("child", 0, "internal: run as participant with this id")
	peers := flag.String("peers", "", "internal: peer directory for child mode")
	flag.Parse()
	if *child != 0 {
		runChild(netio.NodeID(*child), *peers)
		return
	}
	if err := runParent(); err != nil {
		fmt.Fprintln(os.Stderr, "live:", err)
		os.Exit(1)
	}
}

// runChild is one participant process.
func runChild(id netio.NodeID, peerStr string) {
	peerMap, err := liverun.ParsePeers(peerStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var opts liverun.Options
	if id == lateJoiner {
		// The late joiner: no bootstrap membership — it enters the running
		// chat group through the seed and inherits whatever configuration
		// the group adapted to (Mecho by the time it is spawned).
		opts = liverun.Options{
			ID:           id,
			Kind:         netio.Fixed,
			Peers:        peerMap,
			JoinVia:      joinSeed,
			SendCount:    joinerSends,
			SendInterval: 25 * time.Millisecond,
			ExpectRecv:   0,
			ExpectConfig: core.MechoConfigName(relay),
			Linger:       true,
			Timeout:      60 * time.Second,
		}
	} else {
		kind := netio.Fixed
		if id == 100 {
			kind = netio.Mobile
		}
		opts = liverun.Options{
			ID:      id,
			Kind:    kind,
			Peers:   peerMap,
			Members: memberIDs,
			Adapt:   true,
			// The multi-group runtime: every process also hosts a telemetry
			// group over the same UDP endpoint and control plane; the
			// workload runs in both groups, fully isolated from each other.
			JoinGroups:   []string{extraGroup},
			SendCount:    sendPerNode,
			SendInterval: 25 * time.Millisecond,
			// Each node hears everyone else's casts — in every group.
			ExpectRecv:   sendPerNode * (len(memberIDs) - 1),
			ExpectConfig: core.MechoConfigName(relay),
			// Keep serving after the workload: the late joiner and the
			// graceful-leave phase need a running group to act on.
			Linger:  true,
			Timeout: 90 * time.Second,
		}
	}
	if err := liverun.Run(opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "child", id, "failed:", err)
		os.Exit(1)
	}
}

// child is one spawned participant and the parsed state of its output.
type child struct {
	id   netio.NodeID
	cmd  *exec.Cmd
	done chan struct{} // closed on the first "done" line

	mu           sync.Mutex
	delivered    int  // chat casts from other members
	telemetry    int  // telemetry casts from other members
	fromJoiner   int  // chat casts from the late joiner
	reconfigured bool // saw a mecho config line
	lastView     string
	viewAt       time.Time
	left         []string // groups left gracefully
}

// runParent spawns the participants, drives the late join and the graceful
// leave, and summarises their runs.
func runParent() error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	allIDs := append(append([]netio.NodeID(nil), memberIDs...), lateJoiner)
	peers, err := allocatePeers(allIDs)
	if err != nil {
		return err
	}
	fmt.Println("live: three Morpheus processes over UDP on localhost, one late joiner")
	for _, id := range allIDs {
		fmt.Printf("live:   node %d -> %s\n", id, peers[id])
	}
	peerStr := formatPeers(peers, allIDs)

	children := make(map[netio.NodeID]*child)
	results := make(chan error, len(allIDs))
	spawn := func(id netio.NodeID) (*child, error) {
		c := &child{id: id, done: make(chan struct{})}
		c.cmd = exec.Command(self, "-child", fmt.Sprint(id), "-peers", peerStr)
		stdout, err := c.cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		c.cmd.Stderr = os.Stderr
		if err := c.cmd.Start(); err != nil {
			return nil, fmt.Errorf("spawn node %d: %w", id, err)
		}
		children[id] = c
		go func() {
			sc := bufio.NewScanner(stdout)
			doneSeen := false
			for sc.Scan() {
				line := sc.Text()
				fmt.Printf("  [node %3d] %s\n", id, line)
				c.mu.Lock()
				switch {
				case strings.HasPrefix(line, "recv ") && !strings.Contains(line, fmt.Sprintf("from=%d ", id)):
					switch {
					case strings.Contains(line, "group="+extraGroup+" "):
						c.telemetry++
					default:
						c.delivered++
						if strings.Contains(line, fmt.Sprintf("from=%d ", lateJoiner)) {
							c.fromJoiner++
						}
					}
				case strings.HasPrefix(line, "config ") && strings.Contains(line, "name=mecho"):
					c.reconfigured = true
				case strings.HasPrefix(line, "view "):
					if _, members, ok := strings.Cut(line, "members="); ok {
						c.lastView = members
						c.viewAt = time.Now() //lint:wallclock-ok timestamps live child output as it arrives
					}
				case strings.HasPrefix(line, "left "):
					if _, g, ok := strings.Cut(line, "group="); ok {
						g, _, _ = strings.Cut(g, " ")
						c.left = append(c.left, g)
					}
				case strings.HasPrefix(line, "done ") && !doneSeen:
					doneSeen = true
					close(c.done)
				}
				c.mu.Unlock()
			}
			results <- c.cmd.Wait()
		}()
		return c, nil
	}

	// Phase 1: the bootstrap trio runs the paper's workload (reliable
	// multicast in two groups + live plain->mecho reconfiguration), then
	// lingers.
	for _, id := range memberIDs {
		if _, err := spawn(id); err != nil {
			return err
		}
	}
	for _, id := range memberIDs {
		if err := waitDone(children[id], 90*time.Second); err != nil {
			return err
		}
	}

	// Phase 2: the late joiner enters the running (already adapted) group
	// through seed 1 and multicasts; every original member must deliver its
	// casts.
	fmt.Printf("live: trio done — starting late joiner %d via seed %d\n", lateJoiner, joinSeed)
	joiner, err := spawn(lateJoiner)
	if err != nil {
		return err
	}
	if err := waitDone(joiner, 60*time.Second); err != nil {
		return err
	}
	if err := waitAll(30*time.Second, "late joiner casts delivered", func() (bool, string) {
		for _, id := range memberIDs {
			c := children[id]
			c.mu.Lock()
			got := c.fromJoiner
			c.mu.Unlock()
			if got < joinerSends {
				return false, fmt.Sprintf("node %d has %d/%d joiner casts", id, got, joinerSends)
			}
		}
		return true, ""
	}); err != nil {
		return err
	}

	// Phase 3: kill one original member mid-run. Its graceful leave is
	// announced through the control plane, so every survivor must install a
	// view without it promptly — well under the 5s failure-detector
	// threshold that would otherwise be the only way out.
	fmt.Printf("live: sending SIGTERM to node %d (graceful leave)\n", victim)
	killedAt := time.Now() //lint:wallclock-ok marks the real SIGTERM instant to time the leave
	if err := children[victim].cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal node %d: %w", victim, err)
	}
	survivors := []netio.NodeID{1, 100, lateJoiner}
	if err := waitAll(8*time.Second, "survivor views exclude the leaver", func() (bool, string) {
		for _, id := range survivors {
			c := children[id]
			c.mu.Lock()
			view, at := c.lastView, c.viewAt
			c.mu.Unlock()
			if at.Before(killedAt) || containsID(view, victim) {
				return false, fmt.Sprintf("node %d still at view [%s]", id, view)
			}
		}
		return true, ""
	}); err != nil {
		return err
	}
	var recoverIn time.Duration
	for _, id := range survivors {
		c := children[id]
		c.mu.Lock()
		if d := c.viewAt.Sub(killedAt); d > recoverIn {
			recoverIn = d
		}
		c.mu.Unlock()
	}
	fmt.Printf("live: all survivors recovered in %s (failure detector would need 5s+)\n", recoverIn.Round(time.Millisecond))

	// Phase 4: wind the rest down gracefully and collect exit statuses.
	for _, id := range survivors {
		if err := children[id].cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return fmt.Errorf("signal node %d: %w", id, err)
		}
	}
	failed := false
	for range children {
		if err := <-results; err != nil {
			fmt.Printf("live: a participant FAILED: %v\n", err)
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("a participant failed")
	}

	want := sendPerNode * (len(memberIDs) - 1)
	fmt.Println("live: summary")
	for _, id := range memberIDs {
		c := children[id]
		fmt.Printf("live:   node %3d delivered %d chat (quota %d) + %d/%d telemetry, mecho: %v, joiner casts: %d/%d\n",
			id, c.delivered, want, c.telemetry, want, c.reconfigured, c.fromJoiner, joinerSends)
	}
	fmt.Printf("live:   node %3d (victim) left gracefully: %v\n", victim, children[victim].left)
	fmt.Printf("live:   node %3d (late joiner) delivered %d chat, config inherited by state transfer\n",
		lateJoiner, children[lateJoiner].delivered)
	fmt.Println("live: ok — live reconfiguration, late join via state transfer, and graceful leave across 4 processes")
	return nil
}

// waitDone blocks until the child's first "done" line or the timeout.
func waitDone(c *child, d time.Duration) error {
	select {
	case <-c.done:
		return nil
	case <-time.After(d): //lint:wallclock-ok wall timeout on a live child process
		return fmt.Errorf("node %d never reported done", c.id)
	}
}

// waitAll polls cond until it holds or the deadline passes.
func waitAll(d time.Duration, what string, cond func() (bool, string)) error {
	deadline := time.Now().Add(d) //lint:wallclock-ok wall deadline for polling live processes
	for {
		ok, lag := cond()
		if ok {
			return nil
		}
		if time.Now().After(deadline) { //lint:wallclock-ok wall deadline for polling live processes
			return fmt.Errorf("timeout waiting for %s: %s", what, lag)
		}
		time.Sleep(100 * time.Millisecond) //lint:wallclock-ok real-time polling backoff
	}
}

// containsID reports whether the comma-separated view members include id.
func containsID(view string, id netio.NodeID) bool {
	for _, part := range strings.Split(view, ",") {
		if strings.TrimSpace(part) == fmt.Sprint(id) {
			return true
		}
	}
	return false
}

// allocatePeers reserves one localhost UDP port per member. The ports are
// released before the children bind them; a steal in that window would
// fail the run loudly, which for a demo is acceptable.
func allocatePeers(ids []netio.NodeID) (map[netio.NodeID]string, error) {
	peers := make(map[netio.NodeID]string, len(ids))
	for _, id := range ids {
		c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return nil, err
		}
		peers[id] = c.LocalAddr().String()
		c.Close()
	}
	return peers, nil
}

// formatPeers renders the directory in -peers syntax.
func formatPeers(peers map[netio.NodeID]string, ids []netio.NodeID) string {
	parts := make([]string, 0, len(peers))
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("%d=%s", id, peers[id]))
	}
	return strings.Join(parts, ",")
}
