// XMLConfig: channels described in XML and instantiated at run time — the
// AppiaXML capability (§3.1, [16]) that Core relies on to ship
// configurations. Three nodes deploy a totally-ordered stack from a literal
// XML document; concurrent senders then race, and every node prints the
// same delivery order because the sequencer serialises them.
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/group"
	"morpheus/internal/stack"
	"morpheus/internal/vnet"
)

// The channel description Core would ship during a reconfiguration. The
// composition is bottom-up: transport, fan-out, reliability, membership,
// total order.
const channelXML = `
<appia>
  <channel name="data" qos="total-order">
    <session layer="transport.ptp"/>
    <session layer="group.fanout"/>
    <session layer="group.nak">
      <param name="nack-delay">10ms</param>
      <param name="stable-interval">50ms</param>
    </session>
    <session layer="group.gms"/>
    <session layer="group.total"/>
  </channel>
</appia>`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xmlconfig:", err)
		os.Exit(1)
	}
}

func run() error {
	doc, err := appiaxml.ParseString(channelXML)
	if err != nil {
		return err
	}

	w := vnet.NewWorld(99)
	defer w.Close()
	w.AddSegment(vnet.SegmentConfig{Name: "lan"})

	members := []appia.NodeID{1, 2, 3}
	type member struct {
		mgr   *stack.Manager
		sched *appia.Scheduler
		mu    sync.Mutex
		order []string
	}
	var nodes []*member
	for _, id := range members {
		vn, err := w.AddNode(id, vnet.Fixed, "lan")
		if err != nil {
			return err
		}
		m := &member{sched: appia.NewScheduler()}
		m.mgr = stack.NewManager(stack.ManagerConfig{
			Node: vn, Self: id, Scheduler: m.sched,
			OnDeliver: func(ev *group.CastEvent) {
				m.mu.Lock()
				m.order = append(m.order, string(ev.Msg.Bytes()))
				m.mu.Unlock()
			},
			Logf: func(string, ...any) {},
		})
		if err := m.mgr.Deploy(doc, "total-order", 1, members); err != nil {
			return err
		}
		defer func() {
			_ = m.mgr.Close()
			m.sched.Close()
		}()
		nodes = append(nodes, m)
	}

	// Three senders race: total order must still agree everywhere.
	const k = 5
	var wg sync.WaitGroup
	for i, m := range nodes {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < k; j++ {
				if err := m.mgr.Send([]byte(fmt.Sprintf("n%d-%d", i+1, j))); err != nil {
					fmt.Fprintln(os.Stderr, "send:", err)
				}
			}
		}()
	}
	wg.Wait()

	deadline := time.Now().Add(15 * time.Second) //lint:wallclock-ok demo waits in real time for reconfiguration
	for time.Now().Before(deadline) {            //lint:wallclock-ok demo waits in real time for reconfiguration
		done := true
		for _, m := range nodes {
			m.mu.Lock()
			if len(m.order) < 3*k {
				done = false
			}
			m.mu.Unlock()
		}
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond) //lint:wallclock-ok real-time polling backoff
	}

	fmt.Println("stack deployed from XML:", doc.Channels[0].QoS)
	for i, m := range nodes {
		m.mu.Lock()
		fmt.Printf("node %d delivery order: %v\n", i+1, m.order)
		m.mu.Unlock()
	}
	a := nodes[0].order
	for _, m := range nodes[1:] {
		for i := range a {
			if m.order[i] != a[i] {
				return fmt.Errorf("total order violated at position %d", i)
			}
		}
	}
	fmt.Println("all three nodes delivered the concurrent sends in the same total order")
	return nil
}
