// Energy: battery-aware relay rotation in an all-mobile ad hoc cell (the
// §1 motivation citing energy-aware broadcasting). All devices are PDAs;
// the Mecho relay role is the expensive one, so the EnergyPolicy rotates it
// to whichever member has the most battery left, extending the time until
// the first device dies.
package main

import (
	"fmt"
	"os"
	"time"

	"morpheus"
	"morpheus/internal/core"
	"morpheus/internal/vnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "energy:", err)
		os.Exit(1)
	}
}

func run() error {
	w := morpheus.NewWorld(33)
	defer w.Close()
	w.AddSegment(vnet.SegmentConfig{Name: "wlan", Wireless: true})

	members := []morpheus.NodeID{1, 2, 3, 4}
	energy := vnet.EnergyConfig{CapacityJ: 0.5, TxPerMsgJ: 0.001, RxPerMsgJ: 0.0002}

	var nodes []*morpheus.Node
	for _, id := range members {
		e := energy
		n, err := morpheus.Start(morpheus.Config{
			World: w, ID: id, Kind: morpheus.Mobile, Segments: []string{"wlan"},
			Members:           members,
			Energy:            &e,
			InitialConfig:     core.MechoConfig(1),
			InitialConfigName: core.MechoConfigName(1),
			Policies:          []morpheus.Policy{core.EnergyPolicy{Hysteresis: 0.15}},
			ContextInterval:   40 * time.Millisecond,
			EvalInterval:      60 * time.Millisecond,
			PublishOnChange:   true,
			OnReconfigured: func(epoch uint64, cfg string, took time.Duration) {
				fmt.Printf("-- epoch %d: relay rotated, now %q\n", epoch, cfg)
			},
		})
		if err != nil {
			return err
		}
		defer func() { _ = n.Close() }()
		nodes = append(nodes, n)
	}

	// Let the context spread, then chat until the first battery dies.
	time.Sleep(250 * time.Millisecond) //lint:wallclock-ok let the shared context spread in real time
	casts := 0
	for {
		dead := false
		for _, n := range nodes {
			if !n.VNode().Alive() {
				dead = true
			}
		}
		if dead || casts >= 2000 {
			break
		}
		if err := nodes[casts%len(nodes)].Send([]byte(fmt.Sprintf("m%d", casts))); err == nil {
			casts++
		}
		time.Sleep(2 * time.Millisecond) //lint:wallclock-ok demo paces real traffic on the wall clock
		if casts%100 == 0 {
			printBatteries(nodes)
		}
	}

	fmt.Printf("network sustained %d casts before the first battery death\n", casts)
	printBatteries(nodes)
	fmt.Println("(compare with a static relay: run morpheus-bench -run energy)")
	return nil
}

func printBatteries(nodes []*morpheus.Node) {
	fmt.Print("   batteries:")
	for _, n := range nodes {
		fmt.Printf("  node%d=%.0f%%", n.ID(), n.VNode().BatteryFraction()*100)
	}
	fmt.Println()
}
