module morpheus

go 1.24
