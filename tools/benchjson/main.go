// Command benchjson converts `go test -bench` output into the repo's
// BENCH_<n>.json format, optionally pairing a before and an after run and
// computing speedups.
//
// Usage:
//
//	go test -bench=. -benchmem ./... > after.txt
//	go run ./tools/benchjson -after after.txt > BENCH_1.json
//	go run ./tools/benchjson -before before.txt -after after.txt > BENCH_1.json
//
// Lines that are not benchmark results are ignored, so raw `go test`
// output can be piped in unfiltered. Repeated runs of one benchmark (from
// -count) are averaged.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated numbers.
type Result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Comparison pairs a benchmark's before and after numbers.
type Comparison struct {
	Name    string  `json:"name"`
	Before  float64 `json:"before_ns_per_op"`
	After   float64 `json:"after_ns_per_op"`
	Speedup float64 `json:"speedup"`
}

// Report is the BENCH_<n>.json document.
type Report struct {
	Note        string       `json:"note,omitempty"`
	Before      []Result     `json:"before,omitempty"`
	After       []Result     `json:"after"`
	Comparisons []Comparison `json:"comparisons,omitempty"`
}

func main() {
	beforePath := flag.String("before", "", "bench output of the pre-optimization build (optional)")
	afterPath := flag.String("after", "", "bench output of the current build (required)")
	note := flag.String("note", "", "free-form provenance note")
	variants := flag.String("variants", "", "compare sub-benchmark variants within the -after run: \"baseline,subject\" pairs X/baseline against X/subject per parent benchmark X")
	flag.Parse()
	if *afterPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -after is required")
		os.Exit(2)
	}

	after, err := parseFile(*afterPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	rep := Report{Note: *note, After: after}

	if *beforePath != "" {
		before, err := parseFile(*beforePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		rep.Before = before
		byName := make(map[string]Result, len(before))
		for _, r := range before {
			byName[r.Name] = r
		}
		for _, a := range after {
			b, ok := byName[a.Name]
			if !ok || a.NsPerOp == 0 {
				continue
			}
			rep.Comparisons = append(rep.Comparisons, Comparison{
				Name:    a.Name,
				Before:  b.NsPerOp,
				After:   a.NsPerOp,
				Speedup: round2(b.NsPerOp / a.NsPerOp),
			})
		}
	}

	if *variants != "" {
		parts := strings.SplitN(*variants, ",", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -variants wants \"baseline,subject\"")
			os.Exit(2)
		}
		rep.Comparisons = append(rep.Comparisons, variantComparisons(after, parts[0], parts[1])...)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// variantComparisons pairs sub-benchmarks X/base against X/subject inside
// one run — the shape of A/B benchmarks like BenchmarkSendWindow's
// windowed vs unbounded modes. Speedup is base/subject: 1.0 means the
// subject variant matches the baseline, above 1.0 it is faster.
func variantComparisons(results []Result, base, subject string) []Comparison {
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	var out []Comparison
	for _, r := range results {
		parent, ok := strings.CutSuffix(r.Name, "/"+base)
		if !ok {
			continue
		}
		s, ok := byName[parent+"/"+subject]
		if !ok || s.NsPerOp == 0 {
			continue
		}
		out = append(out, Comparison{
			Name:    parent + ":" + subject + "-vs-" + base,
			Before:  r.NsPerOp,
			After:   s.NsPerOp,
			Speedup: round2(r.NsPerOp / s.NsPerOp),
		})
	}
	return out
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// parseFile reads bench output, averaging repeated runs per benchmark.
func parseFile(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	type acc struct {
		runs   int
		ns     float64
		bytes  float64
		allocs float64
	}
	accs := make(map[string]*acc)
	var order []string

	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Benchmark results carry the GOMAXPROCS suffix: Name-8.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		a := accs[name]
		if a == nil {
			a = &acc{}
			accs[name] = a
			order = append(order, name)
		}
		// fields: name, iterations, value unit, value unit, ...
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				a.ns += v
			case "B/op":
				a.bytes += v
			case "allocs/op":
				a.allocs += v
			}
		}
		a.runs++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	sort.Strings(order)
	out := make([]Result, 0, len(order))
	for _, name := range order {
		a := accs[name]
		n := float64(a.runs)
		out = append(out, Result{
			Name:        name,
			Runs:        a.runs,
			NsPerOp:     round2(a.ns / n),
			BytesPerOp:  round2(a.bytes / n),
			AllocsPerOp: round2(a.allocs / n),
		})
	}
	return out, nil
}
