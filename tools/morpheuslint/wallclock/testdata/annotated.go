package fix

import "time"

// A trailing directive with a justification suppresses its own line.
func annotatedTrailing() time.Time {
	return time.Now() //lint:wallclock-ok fixture: wall-only by design
}

// A standalone directive suppresses the line below it.
func annotatedStandalone() {
	//lint:wallclock-ok fixture: wall-only by design
	time.Sleep(time.Millisecond)
}

// A directive only reaches its own (or the next) line: the rest of the
// function is still checked.
func annotatedScopeIsOneLine() {
	_ = time.Now() //lint:wallclock-ok fixture: wall-only by design
	_ = time.Now() // want `direct time\.Now bypasses`
}
