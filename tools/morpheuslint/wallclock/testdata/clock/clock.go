// Package clock is the fixture's stand-in for the real clock seam: the
// analyzer matches seam types by package name, so this local fake keeps
// the fixture module self-contained.
package clock

import "time"

// Clock is the seam. Calling through it is always clean: its methods are
// methods, and the analyzer only bans package-level time functions.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
	Sleep(d time.Duration)
	After(d time.Duration) <-chan time.Time
}
