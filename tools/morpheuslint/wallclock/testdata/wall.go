package fix

import (
	"time"

	"fix/clock"
)

// Every banned package-level time function is a finding.
func bad() {
	_ = time.Now()                  // want `direct time\.Now bypasses the deterministic time plane`
	time.Sleep(time.Millisecond)    // want `direct time\.Sleep bypasses`
	<-time.After(time.Millisecond)  // want `direct time\.After bypasses`
	t := time.NewTimer(time.Second) // want `direct time\.NewTimer bypasses`
	t.Stop()
	tk := time.NewTicker(time.Second) // want `direct time\.NewTicker bypasses`
	tk.Stop()
	time.AfterFunc(time.Second, func() {}).Stop() // want `direct time\.AfterFunc bypasses`
	_ = time.Since(time.Unix(0, 0))               // want `direct time\.Since bypasses`
	<-time.Tick(time.Second)                      // want `direct time\.Tick bypasses`
}

// Going through the seam is clean, and so is pure time-value arithmetic:
// (time.Time).After is a comparison, not a clock read.
func good(clk clock.Clock) {
	now := clk.Now()
	if clk.Now().After(now.Add(time.Hour)) {
		return
	}
	clk.Sleep(time.Millisecond)
	<-clk.After(clk.Since(now))
	_ = time.Unix(42, 0)
	_ = now.Sub(time.Date(2005, 6, 1, 0, 0, 0, 0, time.UTC))
	_ = time.Duration(3) * time.Second
}
