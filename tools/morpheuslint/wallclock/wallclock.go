// Package wallclock flags direct use of the time package's clock and
// timer functions. Every timer-driven layer of the runtime must take the
// clock.Clock seam (internal/clock) instead: that seam is what makes
// whole experiments bit-reproducible under the virtual clock, and one raw
// time.AfterFunc in a protocol layer silently punches a wall-time hole in
// the deterministic plane that only shows up — hours later — as a golden
// hash flake. Legitimately wall-only sites (the wall Clock implementation
// itself, the vnet wall-world delivery engine, live-plane commands and
// demos) carry a //lint:wallclock-ok <reason> directive, which the driver
// verifies is justified and still needed.
package wallclock

import (
	"go/ast"
	"go/types"

	"morpheus/tools/morpheuslint/analysis"
)

// Banned are the time-package functions that bypass the seam. Duration
// arithmetic, time.Time formatting, time.Unix etc. remain free: they are
// pure values, not clock reads or timer registrations.
var Banned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Tick":      true,
}

var Analyzer = &analysis.Analyzer{
	Name:  "wallclock",
	Doc:   "flags direct time.Now/Sleep/After/... calls that bypass the clock.Clock seam",
	Scope: func(string) bool { return true },
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !Banned[fn.Name()] {
				return true
			}
			// Methods like (time.Time).After are pure value arithmetic,
			// not clock reads; only package-level functions are banned.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			pass.Reportf(sel.Pos(),
				"direct time.%s bypasses the deterministic time plane; thread a clock.Clock (internal/clock) through this path, or annotate the line with //lint:wallclock-ok <reason> if it is genuinely wall-only",
				fn.Name())
			return true
		})
	}
	return nil
}
