package wallclock

import (
	"testing"

	"morpheus/tools/morpheuslint/analysis"
)

func TestWallclock(t *testing.T) {
	analysis.Fixture(t, Analyzer, "testdata")
}
