// Package clock is the fixture's stand-in for the clock seam: the
// analyzer recognises clock-owned state by the selector base (or captured
// value) being typed from a package named clock.
package clock

import "time"

type Clock interface {
	Sleep(d time.Duration)
	AfterFunc(d time.Duration, fn func()) Timer
	Go(fn func())
}

type Timer interface{ Stop() bool }
