package fix

import (
	"time"

	"fix/clock"
)

type engine struct {
	clk clock.Clock
	in  chan int
	out chan int
}

// A raw goroutine whose body (one call hop away, same package) arms
// clock-owned timers: the virtual clock cannot see it park, so quiescence
// is computed without it.
func (e *engine) start() {
	go e.run() // want `raw goroutine touches clock-owned state`
}

func (e *engine) run() {
	e.clk.AfterFunc(time.Millisecond, func() {}).Stop()
}

// A raw goroutine literal blocking through a captured clock.
func tick(clk clock.Clock) {
	go func() { // want `raw goroutine touches clock-owned state \(clk\.Sleep\)`
		clk.Sleep(time.Millisecond)
	}()
}

// Merely handing the clock value onward still captures clock-owned state.
func handoff(clk clock.Clock) {
	go func() { // want `raw goroutine captures a clock-package value \(clk\)`
		hold(clk)
	}()
}

func hold(clock.Clock) {}

// Raw wall time inside a raw goroutine is the same hole, without any
// clock value in sight.
func wallSpin() {
	go func() { // want `raw goroutine calls time\.Sleep directly`
		time.Sleep(time.Millisecond)
	}()
}

// The sanctioned spawn: clk.Go registers the goroutine as an actor in the
// run-token rotation. It is a plain call, not a go statement.
func sanctioned(clk clock.Clock) {
	clk.Go(func() {
		clk.Sleep(time.Millisecond)
	})
}

// A free-running channel shim touches no clock state and is fine: the
// analyzer only fires when the spawned body visibly touches the clock.
func (e *engine) shim() {
	go func() {
		for v := range e.in {
			e.out <- v
		}
	}()
}

// Pure time-value arithmetic in a goroutine is not a clock read.
func arithmetic(deadline time.Time) {
	go func() {
		_ = deadline.Add(time.Hour)
	}()
}

// The infrastructure that implements the actor protocol itself sits below
// the seam and says so.
func (e *engine) engineLoop() {
	go func() { //lint:goactor-ok fixture: this goroutine implements the token protocol
		e.clk.Sleep(time.Millisecond)
	}()
}
