package goactor

import (
	"testing"

	"morpheus/tools/morpheuslint/analysis"
)

func TestGoactor(t *testing.T) {
	analysis.Fixture(t, Analyzer, "testdata")
}
