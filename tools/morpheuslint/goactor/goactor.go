// Package goactor enforces the virtual clock's actor discipline: inside
// the packages threaded through the clock seam, a goroutine that touches
// clock-owned state (holds a clock.Clock, arms its timers, or reads raw
// wall time) must be spawned with clk.Go, which registers it as an actor
// in the run-token rotation. A raw `go` statement creates an unregistered
// goroutine: the virtual clock cannot see it park, so quiescence — the
// "all actors parked, nothing in flight" rule that gates every time jump
// — is computed without it, and the run either deadlocks (actor waits on
// a timer the frozen clock never fires) or, worse, stays live but
// schedules nondeterministically. Free-running goroutines that only shim
// channels (e.g. flowctl's context-merge helper) are fine and are not
// flagged: the analyzer only fires when the spawned body visibly touches
// clock state. The infrastructure that *implements* the actor protocol
// (scheduler run loops, the pool's workers, the vnet wall engine)
// annotates its spawns with //lint:goactor-ok and the reason it is
// allowed to sit below the seam.
package goactor

import (
	"go/ast"
	"go/types"

	"morpheus/tools/morpheuslint/analysis"
)

// scopePrefixes: packages threaded through the virtual clock. The clock
// package itself is the owner of the protocol and is exempt; netio and
// liverun are the wall-only live plane.
var scopePrefixes = []string{
	"morpheus/internal/appia",
	"morpheus/internal/group",
	"morpheus/internal/stack",
	"morpheus/internal/core",
	"morpheus/internal/mecho",
	"morpheus/internal/epidemic",
	"morpheus/internal/cocaditem",
	"morpheus/internal/fec",
	"morpheus/internal/transport",
	"morpheus/internal/experiment",
	"morpheus/internal/chaos",
	"morpheus/internal/flowctl",
	"morpheus/internal/vnet",
}

var Analyzer = &analysis.Analyzer{
	Name: "goactor",
	Doc:  "flags raw go statements that touch clock-owned state inside virtual-clock packages; actors must be spawned via clk.Go",
	Scope: func(path string) bool {
		return path == "morpheus" || analysis.ScopeUnder(scopePrefixes...)(path)
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	decls := analysis.EnclosingFuncs(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := spawnedBody(pass, decls, g.Call)
			if body == nil {
				return true
			}
			if why := touchesClockState(pass, body); why != "" {
				pass.Reportf(g.Pos(),
					"raw goroutine %s — under the virtual clock it is invisible to quiescence; spawn it as an actor with clk.Go, or annotate //lint:goactor-ok <reason> if it legitimately runs below the clock seam",
					why)
			}
			return true
		})
	}
	return nil
}

// spawnedBody resolves the body the go statement will run: a literal, or
// a same-package function/method declaration (one level deep).
func spawnedBody(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) ast.Node {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// touchesClockState describes the first clock-owned touch in the body, or
// returns "".
func touchesClockState(pass *analysis.Pass, body ast.Node) string {
	why := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch e := n.(type) {
		case *ast.SelectorExpr:
			// Raw wall time.
			if fn, ok := pass.Info.Uses[e.Sel].(*types.Func); ok && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && wallBanned[fn.Name()] {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					why = "calls time." + fn.Name() + " directly"
					return false
				}
			}
			// Clock method calls and clock-typed field reads: the
			// selector's base resolving to a clock-package type is the
			// giveaway (s.clock, clk.After, v.heap...).
			if tv, ok := pass.Info.Types[e.X]; ok && tv.IsValue() &&
				analysis.FromPackageNamed(tv.Type, "clock") {
				why = "touches clock-owned state (" + exprString(e) + ")"
				return false
			}
		case *ast.Ident:
			if obj := pass.Info.ObjectOf(e); obj != nil {
				if _, isVar := obj.(*types.Var); isVar && analysis.FromPackageNamed(obj.Type(), "clock") {
					why = "captures a clock-package value (" + e.Name + ")"
					return false
				}
			}
		}
		return true
	})
	return why
}

var wallBanned = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true, "Since": true, "Tick": true,
}

func exprString(e *ast.SelectorExpr) string {
	if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
		return id.Name + "." + e.Sel.Name
	}
	return "…." + e.Sel.Name
}
