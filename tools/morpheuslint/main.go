// Command morpheuslint is the repo's multichecker: four repo-specific
// analyzers enforcing the determinism, clock and buffer-ownership
// invariants the protocol stack is built on. It is self-contained on the
// standard library (the lint environment is hermetic — no module
// downloads), loading and type-checking the tree from source via `go
// list`. Standard vet passes run separately as `go vet` in `make lint`.
//
// Usage:
//
//	morpheuslint [-tags buildtags] [-dir moduledir] [-list] [packages...]
//
// Packages default to ./... relative to -dir. Non-test files only: the
// invariants protect shipped runtime code; tests legitimately drive wall
// waits and scratch buffers. Exit status 1 when findings remain.
package main

import (
	"flag"
	"fmt"
	"os"

	"morpheus/tools/morpheuslint/analysis"
	"morpheus/tools/morpheuslint/borrowedbuf"
	"morpheus/tools/morpheuslint/goactor"
	"morpheus/tools/morpheuslint/mapiter"
	"morpheus/tools/morpheuslint/wallclock"
)

var analyzers = []*analysis.Analyzer{
	wallclock.Analyzer,
	mapiter.Analyzer,
	borrowedbuf.Analyzer,
	goactor.Analyzer,
}

func main() {
	tags := flag.String("tags", "", "build tags for package loading (e.g. morpheus_portable)")
	dir := flag.String("dir", ".", "module directory to lint")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load(*dir, *tags, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "morpheuslint: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(prog, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "morpheuslint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s\n", f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "morpheuslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
