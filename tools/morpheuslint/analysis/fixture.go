package analysis

import (
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// want is one `// want` expectation in a fixture file.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want (.*)$")
var wantArgRE = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

// Fixture runs one analyzer over the fixture module rooted at dir (which
// must contain its own go.mod so the loader's `go list` resolves the
// fixture's internal imports) and checks the produced findings against
// `// want` comments, analysistest-style: each expectation is one or more
// quoted or backquoted regexes trailing the offending line, every
// expectation must be matched by a finding on its exact line, and every
// finding must match an expectation. Directive-hygiene findings (tag
// "lint") participate the same way, which is how directive checking
// itself is fixture-tested.
func Fixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	prog, err := Load(dir, "", []string{"./..."})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var wants []*want
	for _, pkg := range prog.SortedRoots() {
		for filename, src := range pkg.Src {
			for i, line := range strings.Split(string(src), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				args := wantArgRE.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: malformed // want comment (no quoted regex)", filename, i+1)
				}
				for _, arg := range args {
					pat := arg[1]
					if pat == "" {
						pat = arg[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", filename, i+1, pat, err)
					}
					wants = append(wants, &want{file: filename, line: i + 1, re: re})
				}
			}
		}
	}

	var findings []Finding
	for _, pkg := range prog.SortedRoots() {
		fs, err := RunForTest(prog, a, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		findings = append(findings, fs...)
	}

	for _, f := range findings {
		if !claim(wants, f.Pos, f.Message) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched expectation satisfied by this finding.
func claim(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
