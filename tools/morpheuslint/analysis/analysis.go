// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, built on the standard
// library's go/ast + go/types only: the lint container is hermetic (no
// module downloads), so the multichecker cannot depend on x/tools. It
// provides the Analyzer/Pass/Diagnostic vocabulary, a `go list`-driven
// source loader (load.go), checked suppression directives, and an
// analysistest-style fixture runner (fixture.go).
//
// # Directives
//
// A finding is suppressed — never blanket-disabled — by annotating the
// offending line (or the line directly above it) with
//
//	//lint:<analyzer>-ok <reason>
//
// The directive itself is checked: the analyzer name must exist, the
// reason must be non-empty, and a directive that suppresses nothing is an
// error, so stale annotations cannot accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name is the directive key (//lint:<Name>-ok) and diagnostic tag.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Scope reports whether the analyzer applies to the package at the
	// given import path. The fixture runner bypasses it.
	Scope func(pkgPath string) bool
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Path     string
	// Dep looks up an already-loaded dependency package by import path
	// (nil when absent), e.g. "hash" for the hash.Hash interface.
	Dep func(path string) *types.Package

	diags []Diagnostic
}

// Diagnostic is one finding, positioned within the pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic: position plus the analyzer that (or
// the directive machinery, tagged "lint") produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// directive is one parsed //lint:<name>-ok annotation.
type directive struct {
	analyzer string
	reason   string
	pos      token.Position // of the comment
	target   int            // line it suppresses
	used     bool
}

var directiveRE = regexp.MustCompile(`^//lint:([a-z]+)-ok(?:[ \t]+(.*))?$`)

// scanDirectives parses every //lint: comment in the package. A directive
// on a line of its own suppresses the next line; a trailing directive
// suppresses its own line. Malformed directives (unknown analyzer, empty
// reason) are returned as findings immediately.
func scanDirectives(fset *token.FileSet, pkg *Package, known map[string]bool) ([]*directive, []Finding) {
	var dirs []*directive
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					bad = append(bad, Finding{"lint", pos,
						fmt.Sprintf("malformed directive %q: want //lint:<analyzer>-ok <reason>", c.Text)})
					continue
				}
				name, reason := m[1], strings.TrimSpace(m[2])
				if !known[name] {
					bad = append(bad, Finding{"lint", pos,
						fmt.Sprintf("directive for unknown analyzer %q", name)})
					continue
				}
				if reason == "" {
					bad = append(bad, Finding{"lint", pos,
						fmt.Sprintf("//lint:%s-ok directive has no justification: every suppression must say why the site is exempt", name)})
					continue
				}
				d := &directive{analyzer: name, reason: reason, pos: pos, target: pos.Line}
				if standalone(pkg.Src[pos.Filename], pos) {
					d.target = pos.Line + 1
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, bad
}

// standalone reports whether the comment at pos is the first thing on its
// line (so it annotates the line below, not its own).
func standalone(src []byte, pos token.Position) bool {
	if src == nil || pos.Offset > len(src) {
		return false
	}
	line := src[:pos.Offset]
	if i := lastIndexByte(line, '\n'); i >= 0 {
		line = line[i+1:]
	}
	return len(strings.TrimSpace(string(line))) == 0
}

func lastIndexByte(b []byte, c byte) int {
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// RunAnalyzers runs every in-scope analyzer over the program's root
// packages, applies suppression directives, and returns the surviving
// findings sorted by position. Directive hygiene failures (unknown
// analyzer, empty reason, suppressing nothing) are findings too.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) ([]Finding, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Finding
	for _, pkg := range prog.SortedRoots() {
		dirs, bad := scanDirectives(prog.Fset, pkg, known)
		out = append(out, bad...)
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.ImportPath) {
				continue
			}
			fs, err := runOne(prog, a, pkg)
			if err != nil {
				return nil, err
			}
			for _, f := range fs {
				if suppressed(dirs, a.Name, f.Pos) {
					continue
				}
				out = append(out, f)
			}
		}
		for _, d := range dirs {
			if !d.used {
				out = append(out, Finding{"lint", d.pos,
					fmt.Sprintf("//lint:%s-ok directive suppresses nothing on line %d: remove it", d.analyzer, d.target)})
			}
		}
	}
	sortFindings(out)
	return out, nil
}

// RunForTest runs one analyzer over one package ignoring Scope, with full
// directive processing — the fixture runner's entry point.
func RunForTest(prog *Program, a *Analyzer, pkg *Package) ([]Finding, error) {
	dirs, bad := scanDirectives(prog.Fset, pkg, map[string]bool{a.Name: true})
	out := bad
	fs, err := runOne(prog, a, pkg)
	if err != nil {
		return nil, err
	}
	for _, f := range fs {
		if suppressed(dirs, a.Name, f.Pos) {
			continue
		}
		out = append(out, f)
	}
	for _, d := range dirs {
		if !d.used {
			out = append(out, Finding{"lint", d.pos,
				fmt.Sprintf("//lint:%s-ok directive suppresses nothing on line %d: remove it", d.analyzer, d.target)})
		}
	}
	sortFindings(out)
	return out, nil
}

func runOne(prog *Program, a *Analyzer, pkg *Package) ([]Finding, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     prog.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Path:     pkg.ImportPath,
		Dep:      prog.Dep,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
	}
	fs := make([]Finding, 0, len(pass.diags))
	for _, d := range pass.diags {
		fs = append(fs, Finding{a.Name, prog.Fset.Position(d.Pos), d.Message})
	}
	return fs, nil
}

func suppressed(dirs []*directive, analyzer string, pos token.Position) bool {
	for _, d := range dirs {
		if d.analyzer == analyzer && d.pos.Filename == pos.Filename && d.target == pos.Line {
			d.used = true
			return true
		}
	}
	return false
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return fs[i].Message < fs[j].Message
	})
}
