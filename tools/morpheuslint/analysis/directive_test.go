package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

// dummy flags every call to a function named flagme, giving the directive
// machinery a finding to suppress.
var dummy = &Analyzer{
	Name:  "dummy",
	Doc:   "flags every call to flagme",
	Scope: func(string) bool { return true },
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagme" {
						pass.Reportf(call.Pos(), "call to flagme")
					}
				}
				return true
			})
		}
		return nil
	},
}

// TestDirectiveHygiene pins the directive grammar end to end: a justified
// trailing or standalone directive suppresses exactly its target line,
// while an empty reason, an unknown analyzer, an unused directive, and a
// malformed directive are each findings in their own right (and suppress
// nothing, so the underlying finding fires too).
func TestDirectiveHygiene(t *testing.T) {
	prog, err := Load("testdata/directives", "", []string{"."})
	if err != nil {
		t.Fatal(err)
	}
	roots := prog.SortedRoots()
	if len(roots) != 1 {
		t.Fatalf("want 1 root package, got %d", len(roots))
	}
	got, err := RunForTest(prog, dummy, roots[0])
	if err != nil {
		t.Fatal(err)
	}

	want := []struct {
		line     int
		analyzer string
		substr   string
	}{
		{21, "lint", "has no justification"},
		{21, "dummy", "call to flagme"},
		{26, "lint", `unknown analyzer "mystery"`},
		{26, "dummy", "call to flagme"},
		{31, "lint", "suppresses nothing on line 32"},
		{37, "lint", "malformed directive"},
	}
	for _, w := range want {
		found := false
		for _, f := range got {
			if f.Pos.Line == w.line && f.Analyzer == w.analyzer && strings.Contains(f.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing finding: line %d %s %q", w.line, w.analyzer, w.substr)
		}
	}
	if len(got) != len(want) {
		for _, f := range got {
			t.Logf("got: %s", f)
		}
		t.Errorf("got %d findings, want %d (justified directives on lines 9 and 14 must suppress)", len(got), len(want))
	}
}
