// Package fix exercises the directive grammar against a dummy analyzer
// (named "dummy") that flags every call to flagme.
package fix

func flagme() {}

// A trailing directive with a reason suppresses its own line.
func trailing() {
	flagme() //lint:dummy-ok justified: exercising trailing suppression
}

// A standalone directive suppresses the next line.
func standalone() {
	//lint:dummy-ok justified: exercising standalone suppression
	flagme()
}

// An empty reason is itself a finding, and suppresses nothing: the
// underlying finding fires too.
func emptyReason() {
	flagme() //lint:dummy-ok
}

// A directive naming an analyzer that is not running is a finding.
func unknownAnalyzer() {
	flagme() //lint:mystery-ok some reason
}

// A directive that suppresses nothing must be removed.
func unused() {
	//lint:dummy-ok this line has no finding
	_ = 0
}

// Text that starts like a directive but does not parse is malformed.
func malformed() {
	//lint:dummy-okbroken
	_ = 0
}
