package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ScopeUnder builds an Analyzer.Scope that accepts exactly the packages
// at or under the given import-path prefixes.
func ScopeUnder(prefixes ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range prefixes {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
}

// Callee resolves the function or method object a call invokes, or nil
// (builtins, indirect calls through variables, type conversions).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsBuiltin reports whether the call invokes the named builtin.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// IsConversion reports whether the call expression is a type conversion,
// returning the target type.
func IsConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// FromPackageNamed reports whether t (or its element/pointee) is a named
// type declared in a package whose short name is pkgName. Matching by
// package *name* rather than import path lets the same analyzer recognise
// both the real morpheus/internal/clock package and a fixture module's
// local clock package.
func FromPackageNamed(t types.Type, pkgName string) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Named:
			obj := u.Obj()
			return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
		default:
			return false
		}
	}
}

// NamedFrom reports whether t (through pointers) is the named type
// typeName declared in a package whose short name is pkgName.
func NamedFrom(t types.Type, pkgName, typeName string) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Named:
			obj := u.Obj()
			return obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Name() == pkgName && obj.Name() == typeName
		default:
			return false
		}
	}
}

// HashInterface returns the hash.Hash interface type when the "hash"
// package is in the load graph, else nil.
func HashInterface(dep func(string) *types.Package) *types.Interface {
	pkg := dep("hash")
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup("Hash")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// ImplementsHash reports whether t satisfies hash.Hash: exactly via the
// interface when available, otherwise structurally (a method set with
// Write, Sum and Reset), so fixtures need not import the hash package.
func ImplementsHash(t types.Type, iface *types.Interface) bool {
	if t == nil {
		return false
	}
	if iface != nil {
		return types.Implements(t, iface) ||
			types.Implements(types.NewPointer(t), iface)
	}
	need := map[string]bool{"Write": false, "Sum": false, "Reset": false}
	for _, ms := range []*types.MethodSet{
		types.NewMethodSet(t), types.NewMethodSet(types.NewPointer(t)),
	} {
		for i := 0; i < ms.Len(); i++ {
			name := ms.At(i).Obj().Name()
			if _, ok := need[name]; ok {
				need[name] = true
			}
		}
	}
	return need["Write"] && need["Sum"] && need["Reset"]
}

// EnclosingFuncs returns a map from *types.Func to its declaration for
// every function and method declared in the pass's files, used by
// analyzers that resolve same-package calls one level deep.
func EnclosingFuncs(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}
