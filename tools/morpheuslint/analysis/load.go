package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package. Root packages
// (the ones named by the load patterns) are parsed with comments and full
// function bodies; dependency packages — including the standard library,
// which is type-checked from source because the analyzer must run in a
// hermetic container with no export data and no module downloads — are
// checked with IgnoreFuncBodies, which is both much faster and all the
// analyzers need from them (exported API shape).
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string

	Files []*ast.File       // parsed GoFiles, same order
	Src   map[string][]byte // absolute filename -> source bytes (roots only)
	Types *types.Package
	Info  *types.Info
	Errs  []error // type errors (tolerated in deps, fatal in roots)

	built    bool
	building bool
}

// Program is a load of one module subtree: every pattern-matched package
// plus its full dependency closure, sharing one FileSet. It implements
// types.Importer over the closure.
type Program struct {
	Fset  *token.FileSet
	Pkgs  map[string]*Package
	Roots []*Package // DepOnly=false, in `go list` order
}

// Load runs `go list -deps` in dir (honouring build tags) and parses and
// type-checks the resulting package graph from source. CGO is disabled so
// the pure-Go file sets of std packages are selected, matching what a
// `CGO_ENABLED=0 go build` would compile.
func Load(dir, tags string, patterns []string) (*Program, error) {
	args := []string{"list", "-e", "-deps",
		"-json=ImportPath,Name,Dir,Standard,DepOnly,GoFiles,Imports"}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0", "GOWORK=off")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	prog := &Program{Fset: token.NewFileSet(), Pkgs: map[string]*Package{}}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := &Package{}
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		prog.Pkgs[p.ImportPath] = p
		if !p.DepOnly {
			prog.Roots = append(prog.Roots, p)
		}
	}
	if len(prog.Roots) == 0 {
		return nil, fmt.Errorf("go list %s in %s matched no packages", strings.Join(patterns, " "), dir)
	}
	for _, p := range prog.Roots {
		if err := prog.build(p); err != nil {
			return nil, err
		}
		if len(p.Errs) > 0 {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, p.Errs[0])
		}
	}
	return prog, nil
}

// Import implements types.Importer by building the named package on
// demand; cycles cannot occur in a graph `go list` accepted.
func (prog *Program) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	p := prog.Pkgs[path]
	if p == nil {
		return nil, fmt.Errorf("package %q not in load graph", path)
	}
	if err := prog.build(p); err != nil {
		return nil, err
	}
	return p.Types, nil
}

// Dep returns the type-checked package at path if it is anywhere in the
// load graph (it is not built on demand), or nil. Analyzers use this to
// look up well-known library types such as hash.Hash.
func (prog *Program) Dep(path string) *types.Package {
	if p := prog.Pkgs[path]; p != nil && p.built {
		return p.Types
	}
	return nil
}

func (prog *Program) build(p *Package) error {
	if p.built {
		return nil
	}
	if p.building {
		return fmt.Errorf("import cycle through %s", p.ImportPath)
	}
	p.building = true
	defer func() { p.building = false }()

	root := !p.DepOnly
	mode := parser.SkipObjectResolution
	if root {
		mode |= parser.ParseComments
		p.Src = map[string][]byte{}
	}
	for _, name := range p.GoFiles {
		filename := p.Dir + string(os.PathSeparator) + name
		src, err := os.ReadFile(filename)
		if err != nil {
			return fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		f, err := parser.ParseFile(prog.Fset, filename, src, mode)
		if err != nil {
			if root {
				return fmt.Errorf("%s: %v", p.ImportPath, err)
			}
			p.Errs = append(p.Errs, err)
			continue
		}
		p.Files = append(p.Files, f)
		if root {
			p.Src[filename] = src
		}
	}

	conf := types.Config{
		Importer:         prog,
		IgnoreFuncBodies: !root,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			p.Errs = append(p.Errs, err)
		},
	}
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tpkg, _ := conf.Check(p.ImportPath, prog.Fset, p.Files, p.Info)
	p.Types = tpkg
	p.built = true
	return nil
}

// SortedRoots returns the root packages sorted by import path, for stable
// diagnostic ordering.
func (prog *Program) SortedRoots() []*Package {
	roots := append([]*Package(nil), prog.Roots...)
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	return roots
}
