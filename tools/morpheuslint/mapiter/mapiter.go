// Package mapiter flags `range` over a map whose loop body feeds an
// order-sensitive sink: writing to a hash/trace/digest, arming timers,
// appending loop-derived elements to a slice that outlives the loop
// without a subsequent sort, or sending on a channel. Go randomises map
// iteration order per run, so any such loop is per-run nondeterminism —
// exactly the class behind two shipped bugs: the PR-4 nak.handleStable
// repair timers armed in map order (same-deadline virtual timers fire in
// registration order, so the whole run's schedule shuffled) and the PR-6
// chaos trace hashed in map order (replay identities flapped). The fix is
// the SortedOrigins idiom: materialise the keys, sort them, range over
// the sorted slice.
package mapiter

import (
	"go/ast"
	"go/types"

	"morpheus/tools/morpheuslint/analysis"
)

// timerArmers are method/function names that register a timer: the time
// and clock.Clock vocabulary plus the appia scheduler's After/Every.
var timerArmers = map[string]bool{
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Every":     true,
}

// Scope: the determinism domain — every package that runs on the virtual
// clock or feeds hashed replay traces.
var scopePrefixes = []string{
	"morpheus/internal/appia",
	"morpheus/internal/group",
	"morpheus/internal/stack",
	"morpheus/internal/core",
	"morpheus/internal/mecho",
	"morpheus/internal/epidemic",
	"morpheus/internal/cocaditem",
	"morpheus/internal/fec",
	"morpheus/internal/transport",
	"morpheus/internal/experiment",
	"morpheus/internal/chaos",
	"morpheus/internal/flowctl",
	"morpheus/internal/vnet",
}

var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flags map iteration feeding order-sensitive sinks (hash writes, timer arming, retained appends, channel sends)",
	Scope: func(path string) bool {
		// The facade package orchestrates the same deterministic plane.
		return path == "morpheus" || analysis.ScopeUnder(scopePrefixes...)(path)
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	decls := analysis.EnclosingFuncs(pass)
	arms := armingFuncs(pass, decls)
	hashIface := analysis.HashInterface(pass.Dep)

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if sink := findSink(pass, fd, rng, arms, hashIface); sink != "" {
					pass.Reportf(rng.Pos(),
						"map iteration %s — map order is randomised per run; range over sorted keys instead (the SortedOrigins idiom), or annotate with //lint:mapiter-ok <reason> if order provably cannot matter",
						sink)
				}
				return true
			})
		}
	}
	return nil
}

// armingFuncs computes the same-package functions that (transitively)
// register timers, so a loop body calling s.armNack is recognised even
// though the clock call is one hop away — the exact shape of the PR-4
// handleStable bug.
func armingFuncs(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl) map[*types.Func]bool {
	arms := map[*types.Func]bool{}
	for fn, fd := range decls {
		direct := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isTimerCall(pass, call, nil) {
				direct = true
			}
			return !direct
		})
		if direct {
			arms[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if arms[fn] {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := analysis.Callee(pass.Info, call); callee != nil && arms[callee] {
						found = true
					}
				}
				return !found
			})
			if found {
				arms[fn] = true
				changed = true
			}
		}
	}
	return arms
}

// isTimerCall reports whether the call arms a timer: a banned time
// function, any method named After/AfterFunc/NewTimer/NewTicker/Every, or
// (when arms is non-nil) a same-package function known to arm one.
func isTimerCall(pass *analysis.Pass, call *ast.CallExpr, arms map[*types.Func]bool) bool {
	fn := analysis.Callee(pass.Info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "time" && timerArmers[fn.Name()] {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && timerArmers[fn.Name()] {
		return true
	}
	return arms != nil && arms[fn]
}

// findSink scans the loop body for the first order-sensitive sink and
// describes it, or returns "".
func findSink(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, arms map[*types.Func]bool, hashIface *types.Interface) string {
	loopVars := rangeVars(pass, rng)
	sink := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch e := n.(type) {
		case *ast.SendStmt:
			sink = "sends on a channel"
		case *ast.CallExpr:
			if isTimerCall(pass, e, arms) {
				sink = "arms timers (fires in registration order under the virtual clock)"
				break
			}
			if writesHash(pass, e, hashIface) {
				sink = "writes to a hash/digest"
			}
		case *ast.AssignStmt:
			if desc := retainedAppend(pass, fd, rng, e, loopVars); desc != "" {
				sink = desc
			}
		}
		return sink == ""
	})
	return sink
}

// rangeVars collects the objects bound to the range key and value.
func rangeVars(pass *analysis.Pass, rng *ast.RangeStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			vars[obj] = true
		} else if obj := pass.Info.Uses[id]; obj != nil {
			vars[obj] = true
		}
	}
	return vars
}

// writesHash reports whether the call's receiver or any argument
// implements hash.Hash — covering both h.Write(...) and fmt.Fprintf(h, ...).
func writesHash(pass *analysis.Pass, call *ast.CallExpr, iface *types.Interface) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := pass.Info.Types[sel.X]; ok && tv.IsValue() &&
			analysis.ImplementsHash(tv.Type, iface) {
			return true
		}
	}
	for _, arg := range call.Args {
		if tv, ok := pass.Info.Types[arg]; ok && tv.IsValue() &&
			analysis.ImplementsHash(tv.Type, iface) {
			return true
		}
	}
	return false
}

// retainedAppend flags `outer = append(outer, <loop-derived>)` where
// outer is declared outside the loop and is not sorted after it — the
// canonical collect-then-sort idiom stays clean.
func retainedAppend(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, as *ast.AssignStmt, loopVars map[types.Object]bool) string {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !analysis.IsBuiltin(pass.Info, call, "append") {
			continue
		}
		if !argsUse(pass, call.Args[1:], loopVars) {
			continue // appended values don't depend on the iteration
		}
		if i >= len(as.Lhs) {
			continue
		}
		id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil || insideLoop(pass, obj, rng) {
			continue
		}
		if sortedAfter(pass, fd, rng, obj) {
			continue
		}
		return "appends loop-derived elements to a slice that outlives the loop without sorting it afterwards"
	}
	return ""
}

func argsUse(pass *analysis.Pass, args []ast.Expr, vars map[types.Object]bool) bool {
	for _, a := range args {
		used := false
		ast.Inspect(a, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && vars[pass.Info.ObjectOf(id)] {
				used = true
			}
			return !used
		})
		if used {
			return true
		}
	}
	return false
}

func insideLoop(pass *analysis.Pass, obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
}

// sortedAfter reports whether, later in the enclosing function, obj is
// passed to a sort/slices call — which launders the map order away.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found || n == nil || n.End() <= rng.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
