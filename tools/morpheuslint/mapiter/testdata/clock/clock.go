// Package clock is the fixture's stand-in for the clock seam; the
// analyzer recognises timer arming by method name, so the interface only
// needs the timer vocabulary.
package clock

import "time"

type Timer interface{ Stop() bool }

type Clock interface {
	AfterFunc(d time.Duration, fn func()) Timer
	After(d time.Duration) <-chan time.Time
}
