package fix

import (
	"fmt"
	"hash"
	"sort"
)

// The PR-6 chaos-trace reproduction: violation strings hashed in map
// order made a failing seed's replay identity flap run to run.
func traceViolations(h hash.Hash, counts map[string]int) {
	for stream, n := range counts { // want `map iteration writes to a hash/digest`
		h.Write([]byte(fmt.Sprintf("%s=%d\n", stream, n)))
	}
}

// Writing through an io.Writer API is the same sink: the hash is an
// argument instead of the receiver.
func traceViaFprintf(h hash.Hash, counts map[string]int) {
	for stream, n := range counts { // want `map iteration writes to a hash/digest`
		fmt.Fprintf(h, "%s=%d\n", stream, n)
	}
}

// Channel sends publish the iteration order to another goroutine.
func publish(m map[string]int, ch chan string) {
	for k := range m { // want `map iteration sends on a channel`
		ch <- k
	}
}

// Appending loop-derived elements to a slice that outlives the loop bakes
// the map order into it.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration appends loop-derived elements`
		out = append(out, k)
	}
	return out
}

// The canonical collect-then-sort idiom is clean: the later sort launders
// the order away.
func keysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Order-insensitive aggregation is clean.
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Ranging a slice is always clean, whatever the body does.
func hashSlice(h hash.Hash, rows []string) {
	for _, r := range rows {
		h.Write([]byte(r))
	}
}

// A valid trailing directive suppresses the finding.
func suppressed(h hash.Hash, m map[string]int) {
	for k := range m { //lint:mapiter-ok fixture: order provably cannot matter here
		h.Write([]byte(k))
	}
}
