package fix

import (
	"sort"
	"time"

	"fix/clock"
)

// The PR-4 nak.handleStable reproduction: repair timers armed while
// ranging the pending map. Same-deadline virtual timers fire in
// registration order, so the map's per-run iteration order shuffled the
// whole run's schedule. The clock call is one hop away, behind armNack —
// the analyzer must see through the same-package helper.
type session struct {
	clk     clock.Clock
	pending map[uint32][]byte
}

func (s *session) handleStable() {
	for seq := range s.pending { // want `map iteration arms timers`
		s.armNack(seq)
	}
}

func (s *session) armNack(seq uint32) {
	s.clk.AfterFunc(time.Millisecond, func() { _ = seq })
}

// Arming directly in the loop body is the one-hop version.
func (s *session) armAll() {
	for range s.pending { // want `map iteration arms timers`
		<-s.clk.After(time.Millisecond)
	}
}

// The fixed shape: materialise the keys, sort them, range the slice. The
// timer registration order is now a pure function of the map contents.
func (s *session) handleStableSorted() {
	seqs := make([]uint32, 0, len(s.pending))
	for seq := range s.pending {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		s.armNack(seq)
	}
}
