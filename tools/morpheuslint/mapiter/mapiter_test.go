package mapiter

import (
	"testing"

	"morpheus/tools/morpheuslint/analysis"
)

func TestMapiter(t *testing.T) {
	analysis.Fixture(t, Analyzer, "testdata")
}
