// Package borrowedbuf enforces the netio.Handler borrowed-payload
// contract: the []byte a handler receives aliases the substrate's receive
// buffer (udpnet's recvmmsg ring, a sender's marshal scratch) and is only
// valid for the duration of the call. A handler that retains the slice —
// stores it in a field or package variable, sends it on a channel,
// captures it in a spawned goroutine or timer callback, or appends the
// slice value itself into a longer-lived collection — is reading memory
// the ring will overwrite with the next datagram. This is the PR-8 alias
// bug class, previously only caught by corrupted payloads in soak runs.
// Retention is fine after an intervening copy: bytes.Clone/slices.Clone,
// append([]byte(nil), p...), string(p), or a copying constructor such as
// appia.FromWire (any plain call consuming the payload is assumed to
// parse or copy before returning, per the contract).
package borrowedbuf

import (
	"go/ast"
	"go/types"

	"morpheus/tools/morpheuslint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:  "borrowedbuf",
	Doc:   "flags netio handler payloads retained past handler return without an intervening clone",
	Scope: func(string) bool { return true },
	Run:   run,
}

func run(pass *analysis.Pass) error {
	decls := analysis.EnclosingFuncs(pass)
	seen := map[*ast.BlockStmt]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				// Handlers passed as arguments: ep.Handle(port, h) and
				// explicit netio.Handler(f) conversions.
				if target, ok := analysis.IsConversion(pass.Info, e); ok {
					if isHandlerType(target) && len(e.Args) == 1 {
						checkExpr(pass, decls, seen, e.Args[0])
					}
					return true
				}
				fn := analysis.Callee(pass.Info, e)
				if fn == nil {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					return true
				}
				for i, arg := range e.Args {
					if i >= sig.Params().Len() {
						break
					}
					if isHandlerType(sig.Params().At(i).Type()) {
						checkExpr(pass, decls, seen, arg)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range e.Rhs {
					if i < len(e.Lhs) && isHandlerExpr(pass, e.Lhs[i]) {
						checkExpr(pass, decls, seen, rhs)
					}
				}
			case *ast.ValueSpec:
				for i, v := range e.Values {
					if i < len(e.Names) && isHandlerExpr(pass, e.Names[i]) {
						checkExpr(pass, decls, seen, v)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isHandlerType reports whether t is the named type Handler from a
// package called netio (matching the fixture's local netio too).
func isHandlerType(t types.Type) bool {
	return analysis.NamedFrom(t, "netio", "Handler")
}

func isHandlerExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if ok {
		return isHandlerType(tv.Type)
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.Info.ObjectOf(id); obj != nil {
			return isHandlerType(obj.Type())
		}
	}
	return false
}

// checkExpr resolves a handler-valued expression to a checkable function
// body: a literal, or a same-package function/method by name.
func checkExpr(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, seen map[*ast.BlockStmt]bool, e ast.Expr) {
	switch v := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		checkBody(pass, seen, v.Type, v.Body)
	case *ast.Ident, *ast.SelectorExpr:
		var id *ast.Ident
		if sel, ok := v.(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else {
			id = v.(*ast.Ident)
		}
		if fn, ok := pass.Info.Uses[id].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				checkBody(pass, seen, fd.Type, fd.Body)
			}
		}
	}
}

// checkBody taints the []byte parameters and walks the body for
// retention. The walk is in source order with a light flow model: a clone
// untaints, an alias (q := p, q := p[i:]) taints the new name.
func checkBody(pass *analysis.Pass, seen map[*ast.BlockStmt]bool, ft *ast.FuncType, body *ast.BlockStmt) {
	if body == nil || seen[body] {
		return
	}
	seen[body] = true
	tainted := map[types.Object]bool{}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			if isByteSlice(obj.Type()) {
				tainted[obj] = true
			}
		}
	}
	if len(tainted) == 0 {
		return
	}
	walkRetention(pass, body, body, tainted)
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// walkRetention reports retention of tainted values within body. scope is
// the handler body: assignment to anything declared outside it (fields,
// package vars, captured vars) is retention.
func walkRetention(pass *analysis.Pass, handlerBody *ast.BlockStmt, n ast.Node, tainted map[types.Object]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.AssignStmt:
			handleAssign(pass, handlerBody, e, tainted)
			return false // children handled
		case *ast.SendStmt:
			if aliases(pass, e.Value, tainted) {
				pass.Reportf(e.Pos(),
					"borrowed handler payload sent on a channel outlives the handler; the receive ring will overwrite it — Clone/copy the bytes first (the netio.Handler contract)")
			}
			return true
		case *ast.GoStmt:
			if capturesTainted(pass, e.Call, tainted) {
				pass.Reportf(e.Pos(),
					"borrowed handler payload captured by a spawned goroutine outlives the handler; copy the bytes before handing them off")
			}
			return true
		case *ast.CallExpr:
			// Deferred-execution callbacks: clk.Go / clk.AfterFunc /
			// scheduler posts that capture the payload escape too.
			if fn := analysis.Callee(pass.Info, e); fn != nil {
				switch fn.Name() {
				case "Go", "AfterFunc":
					if capturesTainted(pass, e, tainted) {
						pass.Reportf(e.Pos(),
							"borrowed handler payload captured by a %s callback outlives the handler; copy the bytes before handing them off", fn.Name())
					}
				}
			}
			return true
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				if aliases(pass, r, tainted) {
					pass.Reportf(e.Pos(),
						"borrowed handler payload returned to the caller escapes the handler's lifetime; return a copy")
				}
			}
			return true
		}
		return true
	})
}

// handleAssign processes one assignment: records retention, propagates
// and clears taint.
func handleAssign(pass *analysis.Pass, handlerBody *ast.BlockStmt, as *ast.AssignStmt, tainted map[types.Object]bool) {
	for i, rhs := range as.Rhs {
		// Nested closures etc. still need scanning.
		walkRetention(pass, handlerBody, rhs, tainted)
		if i >= len(as.Lhs) {
			continue
		}
		lhs := ast.Unparen(as.Lhs[i])
		rhsAliases := aliases(pass, rhs, tainted)
		switch l := lhs.(type) {
		case *ast.Ident:
			obj := pass.Info.ObjectOf(l)
			if obj == nil {
				break
			}
			local := obj.Pos() >= handlerBody.Pos() && obj.Pos() <= handlerBody.End()
			if rhsAliases {
				if !local {
					pass.Reportf(as.Pos(),
						"borrowed handler payload stored in %q, which outlives the handler; Clone/copy the bytes first", l.Name)
				} else {
					tainted[obj] = true
				}
			} else if tainted[obj] {
				delete(tainted, obj) // reassigned to a clean value (e.g. a clone)
			}
		case *ast.SelectorExpr:
			if rhsAliases {
				pass.Reportf(as.Pos(),
					"borrowed handler payload stored in field %q outlives the handler; Clone/copy the bytes first (PR-8 alias bug class)", l.Sel.Name)
			}
		case *ast.IndexExpr:
			if rhsAliases {
				pass.Reportf(as.Pos(),
					"borrowed handler payload stored into a map/slice element outlives the handler; Clone/copy the bytes first")
			}
		}
	}
}

// aliases reports whether e evaluates to memory aliasing a tainted slice:
// the ident itself, a slice/paren of it, a slice-typed conversion of it,
// an append that incorporates the slice *value* (non-spread), or a
// composite literal / address-of carrying an aliasing expression. Plain
// calls (parsers, copying constructors) and spread appends yield clean
// values.
func aliases(pass *analysis.Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.Info.ObjectOf(v)
		return obj != nil && tainted[obj]
	case *ast.SliceExpr:
		return aliases(pass, v.X, tainted)
	case *ast.UnaryExpr:
		return aliases(pass, v.X, tainted)
	case *ast.StarExpr:
		return aliases(pass, v.X, tainted)
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if aliases(pass, el, tainted) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if analysis.IsBuiltin(pass.Info, v, "append") {
			// append(x, p) retains p's backing array when p is appended
			// as a value (slice-of-slices); append(x, p...) copies bytes.
			if v.Ellipsis.IsValid() {
				return false
			}
			for _, arg := range v.Args[1:] {
				if aliases(pass, arg, tainted) {
					return true
				}
			}
			// Growing a tainted slice still aliases it (pre-growth).
			return aliases(pass, v.Args[0], tainted)
		}
		if target, ok := analysis.IsConversion(pass.Info, v); ok && len(v.Args) == 1 {
			// A conversion to another slice type keeps the aliasing;
			// string(p) copies.
			if isByteSlice(target) {
				return aliases(pass, v.Args[0], tainted)
			}
			return false
		}
		return false // plain call: assumed to parse/copy (e.g. FromWire, bytes.Clone)
	default:
		return false
	}
}

// capturesTainted reports whether a call's function-literal argument (or
// the spawned call's args) reference a tainted object.
func capturesTainted(pass *analysis.Pass, call *ast.CallExpr, tainted map[types.Object]bool) bool {
	found := false
	check := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := pass.Info.ObjectOf(id); obj != nil && tainted[obj] {
					found = true
				}
			}
			return !found
		})
	}
	for _, arg := range call.Args {
		check(arg)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		check(lit.Body)
	}
	return found
}
