package borrowedbuf

import (
	"testing"

	"morpheus/tools/morpheuslint/analysis"
)

func TestBorrowedbuf(t *testing.T) {
	analysis.Fixture(t, Analyzer, "testdata")
}
