// Package clock is the fixture's stand-in for the clock seam: the
// analyzer treats Go/AfterFunc callbacks as deferred execution whose
// captures outlive the handler.
package clock

import "time"

type Timer interface{ Stop() bool }

type Clock interface {
	Go(fn func())
	AfterFunc(d time.Duration, fn func()) Timer
}
