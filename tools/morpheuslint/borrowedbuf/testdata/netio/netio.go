// Package netio is the fixture's stand-in for the real substrate seam:
// the analyzer matches the Handler type by package and type name, so this
// local fake keeps the fixture module self-contained.
package netio

type NodeID uint32

// Handler receives one frame. The payload is BORROWED: it aliases the
// substrate's receive ring and is only valid for the duration of the call.
type Handler func(src NodeID, port string, payload []byte)

type Endpoint struct{}

func (Endpoint) Handle(port string, h Handler) {}
