package fix

import (
	"time"

	"fix/clock"
	"fix/netio"
)

// The PR-8 alias bug class: handlers that retain the borrowed payload
// past return, previously only caught as corrupted payloads in soak runs.
type sink struct {
	clk    clock.Clock
	last   []byte
	byPort map[string][]byte
	frames [][]byte
	ch     chan []byte
	text   string
}

// Handlers are recognised wherever a Handler-typed value is produced: as
// a call argument, an assignment, a var initialiser, or a conversion.
func (s *sink) register(ep netio.Endpoint) {
	ep.Handle("data", func(src netio.NodeID, port string, payload []byte) {
		s.last = payload // want `stored in field "last"`
	})
	ep.Handle("frame", s.onFrame)
	var h netio.Handler = func(src netio.NodeID, port string, payload []byte) {
		s.frames = append(s.frames, payload) // want `stored in field "frames"`
	}
	_ = h
	_ = netio.Handler(s.onTimer)
}

// Named-method handlers: each retention shape is its own finding.
func (s *sink) onFrame(src netio.NodeID, port string, payload []byte) {
	view := payload[4:]   // aliasing propagates through reslices
	s.byPort[port] = view // want `stored into a map/slice element`
	s.ch <- payload       // want `sent on a channel`
	go s.process(payload) // want `captured by a spawned goroutine`
	go func() {           // want `captured by a spawned goroutine`
		s.process(payload)
	}()
}

// Deferred-execution callbacks escape too: the timer fires after return.
func (s *sink) onTimer(src netio.NodeID, port string, payload []byte) {
	s.clk.AfterFunc(time.Millisecond, func() { // want `captured by a AfterFunc callback`
		s.process(payload)
	})
}

// The clean shapes: every retention happens after an intervening copy.
func (s *sink) onFrameClean(src netio.NodeID, port string, payload []byte) {
	s.last = append([]byte(nil), payload...) // spread append copies the bytes
	s.text = string(payload)                 // string conversion copies
	s.process(payload)                       // synchronous use within the call is the contract
	q := payload                             // a local alias is fine until it escapes...
	q = append([]byte(nil), q...)            // ...and cloning it clears the taint
	s.frames = append(s.frames, q)
	m := parse(payload) // plain calls are assumed to parse/copy (FromWire, bytes.Clone)
	s.ch <- m
}

func registerClean(ep netio.Endpoint, s *sink) {
	ep.Handle("clean", s.onFrameClean)
}

func (s *sink) process(p []byte) {}

func parse(p []byte) []byte { return append([]byte(nil), p...) }
